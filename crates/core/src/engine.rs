//! The cluster-sharded slack engine.
//!
//! [`Prepared::compute_slacks`](crate::analysis::Prepared) needs, for
//! every global pass, one forward ready sweep and one backward required
//! sweep. The reference implementation runs both over the *whole*
//! graph per pass; but arcs never leave their cluster and the Section 7
//! pass plans already tell us which clusters participate in which pass,
//! so the real unit of work is one `(cluster, pass)` pair. This module
//! schedules exactly those pairs:
//!
//! * each pair becomes a [`WorkItem`] over the cluster's
//!   [`ClusterShard`] (compact CSR subgraph, local indices), with the
//!   pass-dependent seed positions resolved at build time and only the
//!   replica *offsets* left dynamic;
//! * items are executed by a work-stealing pool on
//!   [`std::thread::scope`] — workers claim items off a shared atomic
//!   counter (largest shards first) and the results are merged on the
//!   calling thread, so the outcome is bit-identical to the sequential
//!   engine at any thread count;
//! * a [`SlackCache`] keyed by each item's dynamic seed vector skips
//!   the sweeps of every cluster whose seeds did not move since the
//!   last evaluation — the incremental layer exploited heavily by
//!   Algorithms 1 and 2, which move only a few replica offsets per
//!   cycle.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use hb_clock::{EdgeId, Timeline};
use hb_netlist::NetId;
use hb_obs::{Counter, Histogram};
use hb_sta::{ShardedGraph, TimingGraph};
use hb_units::{RiseFall, Time};

use crate::analysis::Boundary;
use crate::sync::Replica;

/// A seed whose position depends on a replica's movable offset:
/// the seed value is `base + offset(replicas[k])`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ReplicaSeed {
    /// Replica index.
    pub k: u32,
    /// Local node index within the item's shard.
    pub local: u32,
    /// The pass-window position of the reference edge.
    pub base: Time,
}

/// A fully static boundary seed (primary input or output).
#[derive(Clone, Copy, Debug)]
pub(crate) struct BoundarySeed {
    /// Boundary index (into `Prepared::pis` or `Prepared::pos`).
    pub k: u32,
    /// Local node index within the item's shard.
    pub local: u32,
    /// The seed value (fully resolved at build time).
    pub at: Time,
}

/// One `(cluster, pass)` unit of sweep work.
#[derive(Clone, Debug)]
pub(crate) struct WorkItem {
    /// Raw cluster index.
    pub cluster: u32,
    /// Global pass index.
    pub pass: usize,
    /// Hash of everything static that the sweep result depends on:
    /// the shard's timing content plus every resolved seed position.
    /// Combined with the dynamic [`Engine::signature`], it makes cached
    /// tables reusable across design edits, not just across cycles of
    /// one analysis.
    pub fingerprint: u64,
    /// Ready seeds at replica outputs (assertion positions).
    pub ready_replica_seeds: Vec<ReplicaSeed>,
    /// Ready seeds at primary inputs.
    pub ready_pi_seeds: Vec<BoundarySeed>,
    /// Required seeds at replica data inputs (closure positions);
    /// only present when this item is the replica's assigned pass.
    pub close_replica_seeds: Vec<ReplicaSeed>,
    /// Required seeds at primary outputs assigned to this pass.
    pub close_po_seeds: Vec<BoundarySeed>,
}

/// The swept local tables of one work item.
#[derive(Clone, Debug)]
pub(crate) struct ItemTables {
    /// Local forward ready times.
    pub ready: Vec<RiseFall<Time>>,
    /// Local backward required times.
    pub required: Vec<RiseFall<Time>>,
}

/// The static schedule: shards plus one work item per participating
/// `(cluster, pass)` pair, largest shards first.
pub(crate) struct Engine {
    pub sharded: ShardedGraph,
    pub items: Vec<WorkItem>,
}

/// Process-global engine metrics, resolved once. The engine is too
/// deep to thread a registry handle into, so its counters live in
/// [`hb_obs::global()`]; they mirror the per-cache [`EngineStats`]
/// counters, which stay authoritative for reports.
struct EngineObs {
    scheduled: Counter,
    reused: Counter,
    evaluate: Histogram,
}

fn engine_obs() -> &'static EngineObs {
    static OBS: OnceLock<EngineObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let g = hb_obs::global();
        EngineObs {
            scheduled: g.counter(
                "hb_engine_items_scheduled_total",
                "(cluster, pass) evaluations requested of the sweep engine",
            ),
            reused: g.counter(
                "hb_engine_items_reused_total",
                "evaluations answered from the incremental slack cache",
            ),
            evaluate: g.histogram(
                "hb_engine_evaluate_nanoseconds",
                "wall time of one full engine evaluation (all items, all workers)",
            ),
        }
    })
}

fn pos_assert(timeline: &Timeline, start: Time, edge: EdgeId) -> Time {
    (timeline.edge_time(edge) - start).rem_euclid(timeline.overall_period())
}

fn pos_close(timeline: &Timeline, start: Time, edge: EdgeId) -> Time {
    (timeline.edge_time(edge) - start).rem_euclid_end(timeline.overall_period())
}

impl Engine {
    /// Builds the schedule from the prepared pass plans. Seed bases are
    /// resolved here; only replica offsets stay dynamic.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        graph: &TimingGraph,
        timeline: &Timeline,
        passes: &[Time],
        cluster_passes: &[Vec<usize>],
        replicas: &[Replica],
        replica_pass: &[usize],
        pis: &[Boundary],
        pos: &[Boundary],
        po_pass: &[usize],
    ) -> Engine {
        let sharded = ShardedGraph::new(graph);
        let mut items: Vec<WorkItem> = Vec::new();
        let mut index: HashMap<(u32, usize), usize> = HashMap::new();
        for (c, passes_of) in cluster_passes.iter().enumerate() {
            for &p in passes_of {
                index.insert((c as u32, p), items.len());
                items.push(WorkItem {
                    cluster: c as u32,
                    pass: p,
                    fingerprint: 0,
                    ready_replica_seeds: Vec::new(),
                    ready_pi_seeds: Vec::new(),
                    close_replica_seeds: Vec::new(),
                    close_po_seeds: Vec::new(),
                });
            }
        }
        let cluster_of = |net: NetId| graph.cluster_of(net).as_raw();
        for (k, r) in replicas.iter().enumerate() {
            for out in [r.output_net, r.output_bar_net].into_iter().flatten() {
                let c = cluster_of(out);
                for &p in &cluster_passes[c as usize] {
                    let item = &mut items[index[&(c, p)]];
                    item.ready_replica_seeds.push(ReplicaSeed {
                        k: k as u32,
                        local: sharded.local_of(out),
                        base: pos_assert(timeline, passes[p], r.assert_edge),
                    });
                }
            }
            let c = cluster_of(r.data_net);
            let p = replica_pass[k];
            let item = &mut items[index[&(c, p)]];
            item.close_replica_seeds.push(ReplicaSeed {
                k: k as u32,
                local: sharded.local_of(r.data_net),
                base: pos_close(timeline, passes[p], r.close_edge),
            });
        }
        for (k, pi) in pis.iter().enumerate() {
            let c = cluster_of(pi.net);
            for &p in &cluster_passes[c as usize] {
                let item = &mut items[index[&(c, p)]];
                item.ready_pi_seeds.push(BoundarySeed {
                    k: k as u32,
                    local: sharded.local_of(pi.net),
                    at: pos_assert(timeline, passes[p], pi.edge) + pi.offset,
                });
            }
        }
        for (k, po) in pos.iter().enumerate() {
            let c = cluster_of(po.net);
            let p = po_pass[k];
            let item = &mut items[index[&(c, p)]];
            item.close_po_seeds.push(BoundarySeed {
                k: k as u32,
                local: sharded.local_of(po.net),
                at: pos_close(timeline, passes[p], po.edge) + po.offset,
            });
        }
        // Resolve each item's static fingerprint: shard content plus
        // every seed position. Replica seeds keep only their static
        // base here — the movable offsets are covered by the dynamic
        // signature at evaluation time.
        for item in &mut items {
            let shard = sharded.shard(hb_sta::ClusterId::from_raw(item.cluster));
            let mut h = hb_rng::mix64(shard.fingerprint(), item.pass as u64);
            for s in &item.ready_replica_seeds {
                h = hb_rng::mix64(h, 1);
                h = hb_rng::mix64(h, (s.k as u64) << 32 | s.local as u64);
                h = hb_rng::mix64(h, s.base.as_ps() as u64);
            }
            for s in &item.ready_pi_seeds {
                h = hb_rng::mix64(h, 2);
                h = hb_rng::mix64(h, (s.k as u64) << 32 | s.local as u64);
                h = hb_rng::mix64(h, s.at.as_ps() as u64);
            }
            for s in &item.close_replica_seeds {
                h = hb_rng::mix64(h, 3);
                h = hb_rng::mix64(h, (s.k as u64) << 32 | s.local as u64);
                h = hb_rng::mix64(h, s.base.as_ps() as u64);
            }
            for s in &item.close_po_seeds {
                h = hb_rng::mix64(h, 4);
                h = hb_rng::mix64(h, (s.k as u64) << 32 | s.local as u64);
                h = hb_rng::mix64(h, s.at.as_ps() as u64);
            }
            item.fingerprint = h;
        }
        // Schedule the heaviest sweeps first so the pool drains evenly.
        items.sort_by_key(|it| {
            std::cmp::Reverse(
                sharded
                    .shard(hb_sta::ClusterId::from_raw(it.cluster))
                    .arc_count(),
            )
        });
        Engine { sharded, items }
    }

    fn shard_of(&self, item: &WorkItem) -> &hb_sta::ClusterShard {
        self.sharded
            .shard(hb_sta::ClusterId::from_raw(item.cluster))
    }

    /// The dynamic seed values of an item — the cache key. Two calls
    /// with equal signatures are guaranteed to sweep to equal tables.
    pub fn signature(&self, item: &WorkItem, replicas: &[Replica]) -> Vec<Time> {
        let mut sig =
            Vec::with_capacity(item.ready_replica_seeds.len() + item.close_replica_seeds.len());
        for s in &item.ready_replica_seeds {
            sig.push(s.base + replicas[s.k as usize].output_assert_offset());
        }
        for s in &item.close_replica_seeds {
            sig.push(s.base + replicas[s.k as usize].input_close_offset());
        }
        sig
    }

    /// [`Engine::compute_item`] under an optional per-pass span timer.
    /// Timing is observational only — the sweep result is untouched.
    fn timed_item(
        &self,
        item: &WorkItem,
        replicas: &[Replica],
        hists: Option<&HashMap<usize, Histogram>>,
    ) -> ItemTables {
        let _span = hists.map(|h| h[&item.pass].span());
        self.compute_item(item, replicas)
    }

    /// Seeds and sweeps one item. Mirrors the reference engine's
    /// per-pass seeding and the dense sweeps operation for operation.
    pub fn compute_item(&self, item: &WorkItem, replicas: &[Replica]) -> ItemTables {
        let shard = self.shard_of(item);
        let mut ready = shard.table(Time::NEG_INF);
        for s in &item.ready_replica_seeds {
            let at = s.base + replicas[s.k as usize].output_assert_offset();
            let slot = &mut ready[s.local as usize];
            *slot = (*slot).max(RiseFall::splat(at));
        }
        for s in &item.ready_pi_seeds {
            let slot = &mut ready[s.local as usize];
            *slot = (*slot).max(RiseFall::splat(s.at));
        }
        shard.sweep_ready_max(&mut ready);

        let mut required = shard.table(Time::INF);
        for s in &item.close_replica_seeds {
            let at = s.base + replicas[s.k as usize].input_close_offset();
            let slot = &mut required[s.local as usize];
            *slot = (*slot).min(RiseFall::splat(at));
        }
        for s in &item.close_po_seeds {
            let slot = &mut required[s.local as usize];
            *slot = (*slot).min(RiseFall::splat(s.at));
        }
        shard.sweep_required(&mut required);

        ItemTables { ready, required }
    }

    /// Evaluates every item, reusing cached tables for items whose seed
    /// signature did not change, and computing the rest on `threads`
    /// workers. Results are positionally indexed by item, so the merge
    /// is deterministic regardless of which worker computed what.
    pub fn evaluate(
        &self,
        replicas: &[Replica],
        cache: &mut SlackCache,
        threads: usize,
    ) -> Vec<Arc<ItemTables>> {
        // Chaos hook: lets the fault harness prove a panic deep inside
        // a sweep cannot brick a resident session. Compiles down to
        // one relaxed atomic load when no global plan is installed.
        if hb_fault::global_fires(hb_fault::ENGINE_SWEEP_PANIC) {
            panic!("injected fault: {}", hb_fault::ENGINE_SWEEP_PANIC);
        }
        let obs = engine_obs();
        let _eval_span = obs.evaluate.span();
        let n = self.items.len();
        let mut sigs: Vec<Vec<Time>> = Vec::with_capacity(n);
        let mut tables: Vec<Option<Arc<ItemTables>>> = vec![None; n];
        let mut todo: Vec<usize> = Vec::new();
        for (i, item) in self.items.iter().enumerate() {
            let sig = self.signature(item, replicas);
            if let Some(entry) = cache.entries.get(&(item.cluster, item.pass as u32)) {
                if entry.fingerprint == item.fingerprint && entry.sig == sig {
                    tables[i] = Some(entry.tables.clone());
                }
            }
            sigs.push(sig);
            if tables[i].is_none() {
                todo.push(i);
            }
        }
        cache.scheduled += n as u64;
        cache.reused += (n - todo.len()) as u64;
        obs.scheduled.add(n as u64);
        obs.reused.add((n - todo.len()) as u64);

        // Per-pass sweep histograms, resolved outside the hot loops and
        // only when the process is armed: the disarmed path never
        // touches the registry or the clock per item.
        let pass_hists: Option<HashMap<usize, Histogram>> = hb_obs::armed().then(|| {
            let mut hists: HashMap<usize, Histogram> = HashMap::new();
            for &i in &todo {
                let p = self.items[i].pass;
                hists.entry(p).or_insert_with(|| {
                    hb_obs::global().histogram_with(
                        "hb_engine_sweep_nanoseconds",
                        "duration of one (cluster, pass) sweep item, by global pass",
                        &[("pass", &p.to_string())],
                    )
                });
            }
            hists
        });
        let pass_hists = pass_hists.as_ref();

        let threads = threads.min(todo.len()).max(1);
        if threads <= 1 {
            for &i in &todo {
                tables[i] = Some(Arc::new(self.timed_item(
                    &self.items[i],
                    replicas,
                    pass_hists,
                )));
            }
        } else {
            let next = AtomicUsize::new(0);
            let computed: Vec<Vec<(usize, ItemTables)>> = std::thread::scope(|scope| {
                let next = &next;
                let todo = &todo;
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            loop {
                                let t = next.fetch_add(1, Ordering::Relaxed);
                                if t >= todo.len() {
                                    break;
                                }
                                let i = todo[t];
                                out.push((
                                    i,
                                    self.timed_item(&self.items[i], replicas, pass_hists),
                                ));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep worker panicked"))
                    .collect()
            });
            for worker in computed {
                for (i, t) in worker {
                    tables[i] = Some(Arc::new(t));
                }
            }
        }

        for &i in &todo {
            let item = &self.items[i];
            cache.entries.insert(
                (item.cluster, item.pass as u32),
                CacheEntry {
                    fingerprint: item.fingerprint,
                    sig: std::mem::take(&mut sigs[i]),
                    tables: tables[i].as_ref().expect("computed above").clone(),
                },
            );
        }
        tables
            .into_iter()
            .map(|t| t.expect("every item evaluated"))
            .collect()
    }
}

/// One memoised `(cluster, pass)` sweep result.
struct CacheEntry {
    /// Static fingerprint of the shard and seed positions that
    /// produced the tables.
    fingerprint: u64,
    /// Dynamic seed signature that produced the tables.
    sig: Vec<Time>,
    tables: Arc<ItemTables>,
}

/// Memo of the last swept tables per `(cluster, pass)` pair, keyed by
/// the item's static fingerprint and dynamic seed signature. This is
/// the dirty-cluster tracking: a cluster whose replica offsets moved
/// gets a different signature and is re-swept; a cluster whose arc
/// delays or seed structure changed (an ECO edit) gets a different
/// fingerprint and is re-swept; everything else is reused.
///
/// Because entries are keyed by content rather than by item position,
/// one cache may outlive the [`Analyzer`] that filled it: a resident
/// session can re-prepare an edited design and hand the same cache to
/// [`Analyzer::analyze_with_cache`](crate::Analyzer::analyze_with_cache),
/// paying sweeps only for the clusters the edit actually touched.
#[derive(Default)]
pub struct SlackCache {
    entries: HashMap<(u32, u32), CacheEntry>,
    /// Item evaluations requested over the cache's lifetime.
    pub(crate) scheduled: u64,
    /// Evaluations answered from cache (clean clusters).
    pub(crate) reused: u64,
}

impl SlackCache {
    /// An empty cache. It adapts to whatever engine uses it, so one
    /// cache can serve successive analyses of successively edited
    /// designs.
    pub fn new() -> SlackCache {
        SlackCache::default()
    }

    /// The number of memoised `(cluster, pass)` sweep results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no memoised sweeps.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every memoised sweep but keeps the lifetime counters.
    pub fn invalidate_all(&mut self) {
        self.entries.clear();
    }

    /// The reuse counters, for reporting.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            items_scheduled: self.scheduled,
            items_reused: self.reused,
        }
    }
}

/// Work counters of the sharded engine over one analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total `(cluster, pass)` evaluations requested by the algorithms.
    pub items_scheduled: u64,
    /// Evaluations served from the incremental cache without sweeping.
    pub items_reused: u64,
}

impl EngineStats {
    /// Counters accumulated since an `earlier` snapshot of the same
    /// cache — the per-analysis delta when a cache outlives a session.
    pub fn since(self, earlier: EngineStats) -> EngineStats {
        EngineStats {
            items_scheduled: self.items_scheduled - earlier.items_scheduled,
            items_reused: self.items_reused - earlier.items_reused,
        }
    }

    /// Evaluations that actually ran the sweeps (scheduled − reused).
    pub fn items_swept(&self) -> u64 {
        self.items_scheduled - self.items_reused
    }
}
