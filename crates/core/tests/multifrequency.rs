//! Cross-domain (multi-frequency) scenarios with hand-computed slacks,
//! on the exact (load-free) library.

mod common;

use common::{exact_lib, Builder};
use hb_clock::ClockSet;
use hb_units::{Time, Transition};
use hummingbird::{Analyzer, EdgeSpec, Spec};

/// `in -> FF(launch clock) -> DEL(delay) -> FF(capture clock)`.
fn cross_domain(
    delay_ns: i64,
    launch: (&str, i64, i64), // (name, period, rise)
    capture: (&str, i64, i64),
) -> (Builder, ClockSet, Spec) {
    let lib = exact_lib(&[delay_ns]);
    let mut b = Builder::new(&lib);
    let input = b.input("in");
    let ck_a = b.input("cka");
    let ck_b = b.input("ckb");
    let lq = b.net("lq");
    let cd = b.net("cd");
    let q = b.output("q");
    b.inst("FF", &[("D", input), ("C", ck_a), ("Q", lq)]);
    b.delay_chain(lq, cd, &[delay_ns]);
    b.inst("FF", &[("D", cd), ("C", ck_b), ("Q", q)]);
    let mut clocks = ClockSet::new();
    for (net, (name, period, rise)) in [("cka", launch), ("ckb", capture)] {
        let _ = net;
        clocks
            .add_clock(
                name,
                Time::from_ns(period),
                Time::from_ns(rise),
                Time::from_ns(rise + period / 2),
            )
            .unwrap();
    }
    let spec = Spec::new()
        .clock_port("cka", launch.0)
        .clock_port("ckb", capture.0)
        .input_arrival(
            "in",
            EdgeSpec::new(launch.0, Transition::Rise),
            Time::from_ns(-1),
        );
    (b, clocks, spec)
}

/// Slow domain launching into a 4× fast domain: the budget is the gap to
/// the *next* fast capture edge (5 ns), not a full fast period.
#[test]
fn slow_to_fast_budget_is_the_next_edge() {
    for (delay, expected_slack) in [(3i64, 2i64), (4, 1), (7, -2)] {
        let (b, clocks, spec) = cross_domain(delay, ("slow", 100, 0), ("fast", 25, 5));
        let lib = exact_lib(&[delay]);
        let report = Analyzer::new(&b.design, b.module, &lib, &clocks, spec)
            .unwrap()
            .analyze();
        // Launch FF asserts at its rising edge (t = 0); the next fast
        // rise is at 5 ns; the ideal FF is delay-free, so slack = 5 − d.
        assert_eq!(
            report.worst_slack(),
            Time::from_ns(expected_slack),
            "delay {delay}"
        );
        assert_eq!(report.ok(), expected_slack > 0);
    }
}

/// Fast domain launching into a slow domain: every fast pulse launches,
/// and the *last* launch before the slow capture is the binding one
/// (replica semantics: 4 launch replicas, budgets 95/70/45/20 ns).
#[test]
fn fast_to_slow_binding_launch_is_the_last_pulse() {
    for (delay, expected_slack) in [(15i64, 5i64), (19, 1), (25, -5)] {
        let (b, clocks, spec) = cross_domain(delay, ("fast", 25, 5), ("slow", 100, 0));
        let lib = exact_lib(&[delay]);
        let analyzer = Analyzer::new(&b.design, b.module, &lib, &clocks, spec).unwrap();
        // 4 launch replicas + 1 capture replica.
        assert_eq!(analyzer.replica_count(), 5);
        let report = analyzer.analyze();
        // Launches at 5/30/55/80 toward the capture at 100:
        // worst budget = 100 − 80 = 20 ns.
        assert_eq!(
            report.worst_slack(),
            Time::from_ns(expected_slack),
            "delay {delay}"
        );
        assert_eq!(report.ok(), expected_slack > 0);
    }
}

/// Three harmonic domains in a chain: each hop's budget follows the edge
/// arithmetic independently.
#[test]
fn three_domain_chain() {
    let lib = exact_lib(&[4, 11]);
    let mut b = Builder::new(&lib);
    let input = b.input("in");
    let cka = b.input("cka");
    let ckb = b.input("ckb");
    let ckc = b.input("ckc");
    let q1 = b.net("q1");
    let d2 = b.net("d2");
    let q2 = b.net("q2");
    let d3 = b.net("d3");
    let q = b.output("q");
    b.inst("FF", &[("D", input), ("C", cka), ("Q", q1)]);
    b.delay_chain(q1, d2, &[4]);
    b.inst("FF", &[("D", d2), ("C", ckb), ("Q", q2)]);
    b.delay_chain(q2, d3, &[11]);
    b.inst("FF", &[("D", d3), ("C", ckc), ("Q", q)]);
    let mut clocks = ClockSet::new();
    // A: 100 ns rise 0; B: 50 ns rise 20 (rises at 20, 70);
    // C: 25 ns rise 10 (rises at 10, 35, 60, 85).
    clocks
        .add_clock("a", Time::from_ns(100), Time::ZERO, Time::from_ns(50))
        .unwrap();
    clocks
        .add_clock("b", Time::from_ns(50), Time::from_ns(20), Time::from_ns(45))
        .unwrap();
    clocks
        .add_clock("c", Time::from_ns(25), Time::from_ns(10), Time::from_ns(22))
        .unwrap();
    let spec = Spec::new()
        .clock_port("cka", "a")
        .clock_port("ckb", "b")
        .clock_port("ckc", "c")
        .input_arrival(
            "in",
            EdgeSpec::new("a", Transition::Rise),
            Time::from_ns(-1),
        );
    let report = Analyzer::new(&b.design, b.module, &lib, &clocks, spec)
        .unwrap()
        .analyze();
    // Hop 1: launch 0 → next B rise 20, delay 4 → slack 16.
    // Hop 2: binding launch B rise 70 → next C rise 85, delay 11 → −4... wait:
    //   B launches at 20 and 70; captures at C rises 10/35/60/85.
    //   From 20 → 35 (budget 15); from 70 → 85 (budget 15); delay 11 →
    //   slack 4.
    assert_eq!(report.worst_slack(), Time::from_ns(4), "{report}");
    assert!(report.ok());
}
