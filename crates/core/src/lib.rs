//! `hummingbird` — system-level timing analysis for latch-based,
//! multi-phase, multi-frequency synchronous designs.
//!
//! A from-scratch reproduction of
//! *N. Weiner and A. Sangiovanni-Vincentelli, "Timing Analysis in a Logic
//! Synthesis Environment", 26th Design Automation Conference (DAC), 1989*
//! — the Hummingbird timing analyzer of the Berkeley Synthesis System.
//!
//! # What it does
//!
//! Given a gate-level (or hierarchical) design, a standard-cell library
//! and a set of harmonically related clock waveforms, the analyzer:
//!
//! 1. models every synchronising element — edge-triggered and
//!    level-sensitive ("transparent") latches, clocked tristate drivers —
//!    with the paper's terminal-offset model (Section 5), replicating
//!    elements clocked faster than the overall period once per control
//!    pulse;
//! 2. pre-processes each combinational *cluster*: plans the **minimum
//!    number of analysis passes** ("broken open" clock periods) so that
//!    every input→output combination sees its assertion before its
//!    closure (Section 7), which also minimises the number of settling
//!    times evaluated per node;
//! 3. runs **Algorithm 1** — iterated complete/partial *slack transfer*
//!    across transparent latches — to find *all paths that are too slow*;
//! 4. optionally runs **Algorithm 2** — *time snatching* — to generate
//!    ready/required-time constraints that guide combinational
//!    re-synthesis (the `hb-resynth` crate consumes these);
//! 5. optionally checks the supplementary (minimum-delay) path
//!    constraints, an extension the paper defines but does not implement.
//!
//! # Quick start
//!
//! ```
//! use hb_cells::sc89;
//! use hb_clock::ClockSet;
//! use hb_netlist::{Design, PinDir};
//! use hb_units::Time;
//! use hummingbird::{Analyzer, Spec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A one-flop design: in -> INV -> DFF(ck) -> out
//! let lib = sc89();
//! let mut d = Design::new("demo");
//! lib.declare_into(&mut d)?;
//! let m = d.add_module("top")?;
//! let input = d.add_net(m, "in")?;
//! let mid = d.add_net(m, "mid")?;
//! let ck = d.add_net(m, "ck")?;
//! let q = d.add_net(m, "q")?;
//! d.add_port(m, "in", PinDir::Input, input)?;
//! d.add_port(m, "ck", PinDir::Input, ck)?;
//! d.add_port(m, "q", PinDir::Output, q)?;
//! let inv = d.leaf_by_name("INV_X1").expect("library cell");
//! let dff = d.leaf_by_name("DFF").expect("library cell");
//! let u = d.add_leaf_instance(m, "u", inv)?;
//! let ff = d.add_leaf_instance(m, "ff", dff)?;
//! d.connect(m, u, "A", input)?;
//! d.connect(m, u, "Y", mid)?;
//! d.connect(m, ff, "D", mid)?;
//! d.connect(m, ff, "CK", ck)?;
//! d.connect(m, ff, "Q", q)?;
//! d.set_top(m)?;
//!
//! let mut clocks = ClockSet::new();
//! clocks.add_clock("ck", Time::from_ns(20), Time::ZERO, Time::from_ns(10))?;
//!
//! let spec = Spec::new().clock_port("ck", "ck");
//! let analyzer = Analyzer::new(&d, m, &lib, &clocks, spec)?;
//! let report = analyzer.analyze();
//! assert!(report.ok(), "20 ns period is plenty for one inverter");
//! # Ok(())
//! # }
//! ```

mod algorithms;
mod analysis;
mod analyzer;
mod engine;
mod error;
mod mindelay;
mod report;
mod spec;
mod symbolic;
mod sync;

pub use algorithms::{Algorithm1Stats, Algorithm2Stats};
pub use analysis::PrepStats;
pub use analyzer::Analyzer;
pub use engine::{EngineStats, SlackCache};
pub use error::AnalyzeError;
pub use mindelay::MinDelayViolation;
pub use report::{
    SlowPath, SlowStep, TerminalKind, TerminalSlack, TimingConstraints, TimingReport,
};
pub use spec::{AnalysisOptions, EdgeSpec, EngineKind, LatchModel, Spec};
pub use symbolic::{ParametricSlack, ParametricTerminal, PeriodError};
pub use sync::{Replica, ReplicaTiming};
