//! Scaling study: analysis cost vs design size (the claim behind
//! Table 1's "very fast": block analysis is a constant number of
//! topological sweeps, so cost grows linearly in cells).

use hb_bench::microbench::bench;
use hb_cells::sc89;
use hb_workloads::{random_pipeline, PipelineParams};
use hummingbird::Analyzer;

fn main() {
    let lib = sc89();
    for gates_per_stage in [125usize, 250, 500, 1000, 2000] {
        let w = random_pipeline(
            &lib,
            PipelineParams {
                stages: 4,
                width: 16,
                gates_per_stage,
                transparent: false,
                period_ns: 200,
                seed: 77,
                imbalance_pct: 0,
            },
        );
        let cells = w.stats().cells;
        let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
            .expect("conforming workload");
        let m = bench(&format!("scaling/analysis/{cells}_cells"), 2, 10, || {
            analyzer.analyze()
        });
        println!(
            "scaling/analysis/{cells}_cells: {:.1} cells/s",
            cells as f64 / m.median
        );
    }
}
