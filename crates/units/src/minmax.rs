use std::fmt;

use crate::Time;

/// An early/late value pair.
///
/// The primary path constraints of the paper bound the **maximum** path
/// delay, while the supplementary constraints bound the **minimum** path
/// delay (`dmin_p > D_p − O_x + O_y − T_β`). Component delays therefore
/// carry both bounds.
///
/// # Examples
///
/// ```
/// use hb_units::{MinMax, Time};
///
/// let d = MinMax::new(Time::from_ps(200), Time::from_ps(450));
/// assert!(d.min <= d.max);
/// assert_eq!(d.widen(MinMax::new(Time::from_ps(100), Time::from_ps(300))),
///            MinMax::new(Time::from_ps(100), Time::from_ps(450)));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MinMax<T> {
    /// The early (minimum) value.
    pub min: T,
    /// The late (maximum) value.
    pub max: T,
}

impl<T> MinMax<T> {
    /// Creates a pair from its components.
    #[inline]
    pub fn new(min: T, max: T) -> MinMax<T> {
        MinMax { min, max }
    }

    /// Creates a pair with both components equal to `value`.
    #[inline]
    pub fn splat(value: T) -> MinMax<T>
    where
        T: Clone,
    {
        MinMax {
            min: value.clone(),
            max: value,
        }
    }

    /// Applies `f` to both components.
    #[inline]
    pub fn map<U>(self, mut f: impl FnMut(T) -> U) -> MinMax<U> {
        MinMax {
            min: f(self.min),
            max: f(self.max),
        }
    }
}

impl MinMax<Time> {
    /// A pair of zeros.
    pub const ZERO: MinMax<Time> = MinMax {
        min: Time::ZERO,
        max: Time::ZERO,
    };

    /// Returns `true` when `min <= max`.
    #[inline]
    pub fn is_ordered(self) -> bool {
        self.min <= self.max
    }

    /// The smallest interval containing both operands.
    #[inline]
    pub fn widen(self, other: MinMax<Time>) -> MinMax<Time> {
        MinMax {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Component-wise saturating sum (min with min, max with max), the
    /// series composition of two delay intervals.
    #[inline]
    pub fn saturating_add(self, other: MinMax<Time>) -> MinMax<Time> {
        MinMax {
            min: self.min.saturating_add(other.min),
            max: self.max.saturating_add(other.max),
        }
    }
}

impl<T: fmt::Display> fmt::Display for MinMax<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let m = MinMax::new(1, 2);
        assert_eq!((m.min, m.max), (1, 2));
        assert_eq!(MinMax::splat(5), MinMax::new(5, 5));
        assert_eq!(m.map(|v| v * 10), MinMax::new(10, 20));
    }

    #[test]
    fn time_ops() {
        let a = MinMax::new(Time::from_ns(1), Time::from_ns(4));
        let b = MinMax::new(Time::from_ns(2), Time::from_ns(3));
        assert!(a.is_ordered());
        assert_eq!(a.widen(b), MinMax::new(Time::from_ns(1), Time::from_ns(4)));
        assert_eq!(
            a.saturating_add(b),
            MinMax::new(Time::from_ns(3), Time::from_ns(7))
        );
        assert!(!MinMax::new(Time::from_ns(4), Time::from_ns(1)).is_ordered());
        assert_eq!(MinMax::<Time>::ZERO.to_string(), "[0ns, 0ns]");
    }
}
