//! The resident analysis session: one loaded design, one persistent
//! slack cache, and the request handlers that operate on them.
//!
//! A [`Session`] is transport-agnostic — it maps request
//! [`Frame`]s to response frames and can therefore be driven by the
//! TCP server, the `--stdio` loop, or a test directly. All state a
//! request can observe lives here; the transport layer only adds
//! locking and deadlines.

use std::sync::Arc;
use std::time::Instant;

use hb_cells::Library;
use hb_clock::ClockSet;
use hb_fault::FaultPlan;
use hb_io::{Frame, TimingDirective};
use hb_netlist::{Design, ModuleId};
use hb_resynth::{apply_eco, EcoOp};
use hb_rng::mix64;
use hb_units::Time;
use hummingbird::{
    AnalysisOptions, Analyzer, EdgeSpec, EngineKind, LatchModel, ParametricSlack, SlackCache, Spec,
    TerminalKind, TimingReport,
};

use crate::metrics::Metrics;

/// Largest accepted `worst-paths` `k`. A hostile `k` beyond this is
/// answered with `error code=limit` instead of being trusted to size
/// result enumeration.
pub const MAX_WORST_PATHS: usize = 10_000;

/// Largest accepted `load` payload in bytes. Below the codec's
/// [`hb_io::proto::MAX_PAYLOAD`] on purpose: the transport limit
/// bounds a single frame, this bounds what a session will *parse and
/// retain*.
pub const MAX_LOAD_BYTES: usize = 8 * 1024 * 1024;

/// Largest accepted number of sub-requests in one `batch` frame.
pub const MAX_BATCH: usize = 1024;

/// Largest accepted number of evaluation points in one `period-sweep`.
pub const MAX_SWEEP_POINTS: usize = 4096;

/// The sub-verbs a `batch` frame may carry — the read-only query set.
/// Restricting batches to queries keeps them out of the write-ahead
/// journal by construction: a batch can never mutate the session, so
/// recovery never needs to replay one.
const BATCH_VERBS: [&str; 9] = [
    "hello",
    "stats",
    "metrics",
    "slack",
    "worst-paths",
    "dump",
    "min-period",
    "slack-at",
    "period-sweep",
];

/// The state a `load` request installs.
struct Loaded {
    design: Design,
    top: ModuleId,
    clocks: ClockSet,
    timing: Vec<TimingDirective>,
    options: AnalysisOptions,
    /// The content-addressed sweep cache. Survives ECO edits — that is
    /// the point of the daemon.
    cache: SlackCache,
    report: Option<TimingReport>,
    /// Bumped on every mutation of the design.
    generation: u64,
    /// Generation `report` was computed for (`None` = never analyzed).
    analyzed: Option<u64>,
    /// Whether `report` carries Algorithm 2 constraints.
    with_constraints: bool,
    /// The parametric (what-if) table and the generation it was built
    /// for. Built lazily by the first `min-period` / `slack-at` /
    /// `period-sweep`; every later what-if query on the same
    /// generation is answered from it with zero engine sweeps.
    parametric: Option<(u64, ParametricSlack)>,
}

/// A resident analysis session: library, loaded design, persistent
/// cache and counters.
pub struct Session {
    library: Library,
    loaded: Option<Loaded>,
    started: Instant,
    loads: u64,
    ecos: u64,
    /// Request counters and latency histograms. Counting goes through
    /// shared atomics so the read-lock path (`&self`) and the write
    /// path tally into the same series — the historical `stats`
    /// undercount (read-served requests never counted) is structurally
    /// impossible here.
    metrics: Arc<Metrics>,
    /// Chaos-test injection schedule; [`FaultPlan::none`] in
    /// production, where every check is a no-op.
    faults: FaultPlan,
}

fn ok() -> Frame {
    Frame::new("ok")
}

fn err(code: &str, message: impl std::fmt::Display) -> Frame {
    Frame::new("error")
        .arg("code", code)
        .with_payload(message.to_string())
}

fn kind_str(kind: TerminalKind) -> &'static str {
    match kind {
        TerminalKind::SyncInput => "sync-input",
        TerminalKind::SyncOutput => "sync-output",
        TerminalKind::PrimaryInput => "primary-input",
        TerminalKind::PrimaryOutput => "primary-output",
    }
}

/// Builds the boundary [`Spec`] from a design's timing directives,
/// with the CLI's default rule: absent explicit `clockport`
/// directives, every clock binds the module port carrying its own
/// name.
pub fn spec_from_directives(
    design: &Design,
    top: ModuleId,
    clocks: &ClockSet,
    directives: &[TimingDirective],
) -> Result<Spec, String> {
    if clocks.is_empty() {
        return Err("the design declares no clocks".into());
    }
    let mut spec = Spec::new();
    let mut has_clock_ports = false;
    for d in directives {
        match d {
            TimingDirective::ClockPort { port, clock } => {
                spec = spec.clock_port(port, clock);
                has_clock_ports = true;
            }
            TimingDirective::Arrive { port, edge, offset } => {
                spec = spec.input_arrival(
                    port,
                    EdgeSpec::new(&edge.0, edge.1).at_occurrence(edge.2),
                    *offset,
                );
            }
            TimingDirective::Require { port, edge, offset } => {
                spec = spec.output_required(
                    port,
                    EdgeSpec::new(&edge.0, edge.1).at_occurrence(edge.2),
                    *offset,
                );
            }
        }
    }
    if !has_clock_ports {
        for (_, clock) in clocks.clocks() {
            if design.module(top).port_by_name(clock.name()).is_some() {
                spec = spec.clock_port(clock.name(), clock.name());
            }
        }
    }
    Ok(spec)
}

/// Serialises a [`Spec`] into the equivalent `.hum` timing directives
/// (sorted by port so the output is deterministic). This is how a
/// programmatically built workload travels to a daemon through `load`.
pub fn directives_from_spec(spec: &Spec) -> Vec<TimingDirective> {
    let mut out = Vec::new();
    let mut clock_ports: Vec<_> = spec.clock_ports().collect();
    clock_ports.sort_unstable();
    for (port, clock) in clock_ports {
        out.push(TimingDirective::ClockPort {
            port: port.to_owned(),
            clock: clock.to_owned(),
        });
    }
    let mut arrivals: Vec<_> = spec.input_arrivals().collect();
    arrivals.sort_unstable_by_key(|(p, _, _)| p.to_owned());
    for (port, edge, offset) in arrivals {
        out.push(TimingDirective::Arrive {
            port: port.to_owned(),
            edge: (edge.clock.clone(), edge.transition, edge.occurrence),
            offset,
        });
    }
    let mut requireds: Vec<_> = spec.output_requireds().collect();
    requireds.sort_unstable_by_key(|(p, _, _)| p.to_owned());
    for (port, edge, offset) in requireds {
        out.push(TimingDirective::Require {
            port: port.to_owned(),
            edge: (edge.clock.clone(), edge.transition, edge.occurrence),
            offset,
        });
    }
    out
}

impl Session {
    /// A session resolving cells against `library`, with nothing
    /// loaded.
    pub fn new(library: Library) -> Session {
        Session::with_faults(library, FaultPlan::none())
    }

    /// A session with a fault-injection schedule — the chaos suite's
    /// entry point. With [`FaultPlan::none`] this is [`Session::new`].
    pub fn with_faults(library: Library, faults: FaultPlan) -> Session {
        Session {
            library,
            loaded: None,
            started: Instant::now(),
            loads: 0,
            ecos: 0,
            metrics: Arc::new(Metrics::new()),
            faults,
        }
    }

    /// The session's fault schedule.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Replaces the fault schedule (used when a rebuilt session must
    /// keep honouring the transport's plan).
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// The session's metrics instance, shared with the transport.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Replaces the metrics instance — the transport installs its own
    /// at bind time, and recovery re-installs it into a rebuilt
    /// session so counter history survives a journal replay.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = metrics;
    }

    /// A content fingerprint of everything a journal replay must
    /// reproduce: the loaded design/clocks/timing (via the canonical
    /// `.hum` dump), the analysis options, and the constraints mode.
    /// Deliberately excludes volatile counters (uptime, request
    /// totals, generation) and the derived report — queries rebuild
    /// the latter deterministically on demand.
    pub fn fingerprint(&self) -> u64 {
        let mut h = mix64(0x4855_4d4d_4249_5244, 0x1989_0625);
        let Some(l) = &self.loaded else {
            return mix64(h, 0);
        };
        let text = hb_io::write_hum_with_timing(&l.design, &l.clocks, &l.timing);
        h = mix64(h, text.len() as u64);
        for chunk in text.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            h = mix64(h, u64::from_le_bytes(word));
        }
        h = mix64(h, l.options.latch_model as u64);
        h = mix64(h, l.options.partial_divisor as u64);
        h = mix64(h, l.options.max_cycles as u64);
        h = mix64(h, u64::from(l.options.check_min_delays));
        h = mix64(h, l.options.threads as u64);
        h = mix64(h, l.options.engine as u64);
        mix64(h, u64::from(l.with_constraints))
    }

    /// Salvages the content-addressed sweep cache out of a (possibly
    /// half-mutated) session. Sound after a panic: entries are keyed
    /// by shard content and seed signature and inserted only once
    /// fully computed, so whatever is present is correct.
    pub fn take_cache(&mut self) -> Option<SlackCache> {
        self.loaded
            .as_mut()
            .map(|l| std::mem::replace(&mut l.cache, SlackCache::new()))
    }

    /// Installs a salvaged cache into the loaded design (journal
    /// replay does this right after its `load` entry so the replayed
    /// analyses run warm).
    pub fn install_cache(&mut self, cache: SlackCache) {
        if let Some(l) = self.loaded.as_mut() {
            l.cache = cache;
        }
    }

    /// A deterministic approximation of the session's resident
    /// footprint in bytes — what the fleet's memory budget accounts
    /// against. Not a malloc measurement: a stable formula over the
    /// loaded design's cell/net counts and the cache population, so
    /// eviction decisions reproduce across runs and platforms.
    pub fn approx_resident_bytes(&self) -> usize {
        let Some(l) = &self.loaded else {
            return 256;
        };
        let stats = l.design.stats(l.top);
        256 + stats.cells * 160 + stats.nets * 96 + l.cache.len() * 256
    }

    /// The loaded state as synthetic journal frames: one `load` of the
    /// canonical dump text plus, if an analysis has succeeded, one
    /// options-bearing re-analysis. `None` when nothing is loaded.
    pub(crate) fn snapshot_frames(&self) -> Option<Vec<Frame>> {
        let l = self.loaded.as_ref()?;
        let text = hb_io::write_hum_with_timing(&l.design, &l.clocks, &l.timing);
        let mut frames = vec![Frame::new("load").with_payload(text)];
        if l.analyzed.is_some() {
            let verb = if l.with_constraints {
                "constraints"
            } else {
                "analyze"
            };
            frames.push(
                Frame::new(verb)
                    .arg("threads", l.options.threads)
                    .arg(
                        "latch",
                        match l.options.latch_model {
                            LatchModel::Transparent => "transparent",
                            LatchModel::EdgeTriggered => "edge",
                        },
                    )
                    .arg(
                        "engine",
                        match l.options.engine {
                            EngineKind::Sharded => "sharded",
                            EngineKind::Reference => "reference",
                        },
                    )
                    .arg("min-delays", u8::from(l.options.check_min_delays)),
            );
        }
        Some(frames)
    }

    /// The last computed report, if the loaded design has been
    /// analyzed. Exposed for parity testing against one-shot runs.
    pub fn last_report(&self) -> Option<&TimingReport> {
        self.loaded.as_ref().and_then(|l| l.report.as_ref())
    }

    /// Answers `req` without mutating the session, or `None` when the
    /// request needs (or may need) the write path. The transport uses
    /// this under a read lock so concurrent queries of a settled
    /// analysis never serialise.
    pub fn handle_readonly(&self, req: &Frame) -> Option<Frame> {
        let serveable = match req.verb.as_str() {
            "hello" | "stats" | "metrics" | "shutdown" => true,
            "slack" | "worst-paths" | "dump" => self.settled(),
            "min-period" | "slack-at" | "period-sweep" => self.param_settled(),
            "batch" => self.batch_serveable(req),
            _ => false,
        };
        if !serveable {
            return None;
        }
        // This is the fix for the historical `stats` undercount: the
        // read path counts through the shared atomics too, so requests
        // served under the read lock no longer vanish from `requests`.
        self.metrics.count_read(&req.verb);
        let _handle = self.metrics.handle_span(&req.verb);
        let reply = self.dispatch_readonly(req);
        if reply.verb == "error" {
            self.metrics.error(reply.get("code").unwrap_or("unknown"));
        }
        Some(reply)
    }

    fn dispatch_readonly(&self, req: &Frame) -> Frame {
        match req.verb.as_str() {
            "hello" => ok().arg("server", "hummingbird").arg("proto", 1),
            "shutdown" => ok().arg("draining", 1),
            "stats" => self.stats(),
            "metrics" => ok()
                .arg("format", "prometheus-text")
                .with_payload(self.metrics.render_with_global()),
            "slack" => self.slack(req),
            "worst-paths" => self.worst_paths(req),
            "min-period" => self.min_period(),
            "slack-at" => self.slack_at(req),
            "period-sweep" => self.period_sweep(req),
            "dump" => self.dump(),
            "batch" => self.batch(req),
            _ => unreachable!("gated by handle_readonly"),
        }
    }

    /// Whether the loaded design has a settled (current-generation)
    /// analysis the read path may serve from.
    fn settled(&self) -> bool {
        self.loaded
            .as_ref()
            .is_some_and(|l| l.analyzed == Some(l.generation))
    }

    /// Whether the loaded design has a current-generation parametric
    /// table the read path may serve what-if queries from.
    fn param_settled(&self) -> bool {
        self.loaded
            .as_ref()
            .is_some_and(|l| matches!(&l.parametric, Some((g, _)) if *g == l.generation))
    }

    /// Whether a `batch` request can be answered under the read lock:
    /// every sub-request must be answerable without (re)analysis. A
    /// batch that fails to decode is also serveable — its error reply
    /// mutates nothing.
    fn batch_serveable(&self, req: &Frame) -> bool {
        match Self::decode_batch(req) {
            Err(_) => true,
            Ok(subs) => {
                let needs_report = subs
                    .iter()
                    .any(|f| matches!(f.verb.as_str(), "slack" | "worst-paths" | "dump"));
                let needs_param = subs
                    .iter()
                    .any(|f| matches!(f.verb.as_str(), "min-period" | "slack-at" | "period-sweep"));
                (!needs_report || self.settled()) && (!needs_param || self.param_settled())
            }
        }
    }

    /// Answers one request, mutating the session as needed. Every verb
    /// returns a structured reply; unknown or ill-formed requests earn
    /// an `error` frame, never a dropped connection.
    pub fn handle(&mut self, req: &Frame) -> Frame {
        self.metrics.count_write(&req.verb);
        let _handle = self.metrics.handle_span(&req.verb);
        let reply = self.dispatch(req);
        if reply.verb == "error" {
            self.metrics.error(reply.get("code").unwrap_or("unknown"));
        }
        reply
    }

    /// [`Session::handle`] without the request counting — journal
    /// replay rebuilds state through this so recovery does not inflate
    /// the request history it is restoring.
    pub(crate) fn handle_replay(&mut self, req: &Frame) -> Frame {
        self.dispatch(req)
    }

    fn dispatch(&mut self, req: &Frame) -> Frame {
        match req.verb.as_str() {
            "hello" | "stats" | "metrics" | "shutdown" | "dump" => self.dispatch_readonly(req),
            "load" => self.load(req),
            "analyze" => self.analyze(req),
            "constraints" => self.constraints(req),
            "slack" => {
                if let Some(reply) = self.ensure_analyzed().err() {
                    return reply;
                }
                self.slack(req)
            }
            "worst-paths" => {
                if let Some(reply) = self.ensure_analyzed().err() {
                    return reply;
                }
                self.worst_paths(req)
            }
            "eco" => self.eco(req),
            "min-period" | "slack-at" | "period-sweep" => {
                if let Some(reply) = self.ensure_parametric().err() {
                    return reply;
                }
                self.dispatch_readonly(req)
            }
            "batch" => self.batch_write(req),
            verb => err("unknown-verb", format!("unknown request verb `{verb}`")),
        }
    }

    /// The write-path `batch` entry: runs the implicit re-analysis any
    /// report-dependent sub-request needs, then serves the batch
    /// read-only. Batches stay out of the journal — the re-analysis is
    /// reconstructible from the journaled `load`/`analyze` history.
    fn batch_write(&mut self, req: &Frame) -> Frame {
        let (needs_report, needs_param) = match Self::decode_batch(req) {
            Err(reply) => return reply,
            Ok(subs) => (
                subs.iter()
                    .any(|f| matches!(f.verb.as_str(), "slack" | "worst-paths")),
                subs.iter()
                    .any(|f| matches!(f.verb.as_str(), "min-period" | "slack-at" | "period-sweep")),
            ),
        };
        if needs_report {
            if let Some(reply) = self.ensure_analyzed().err() {
                return reply;
            }
        }
        if needs_param {
            if let Some(reply) = self.ensure_parametric().err() {
                return reply;
            }
        }
        self.batch(req)
    }

    /// Decodes a batch payload into its sub-requests, enforcing the
    /// read-only verb set and [`MAX_BATCH`].
    fn decode_batch(req: &Frame) -> Result<Vec<Frame>, Frame> {
        let Some(payload) = req.payload.as_deref() else {
            return Err(err(
                "usage",
                "batch needs encoded sub-requests as its payload",
            ));
        };
        let mut decoder = hb_io::FrameDecoder::new();
        decoder.feed(payload.as_bytes());
        let mut subs = Vec::new();
        loop {
            match decoder.next_frame() {
                Ok(Some(sub)) => {
                    if subs.len() == MAX_BATCH {
                        return Err(err(
                            "limit",
                            format!("batch exceeds {MAX_BATCH} sub-requests"),
                        ));
                    }
                    subs.push(sub);
                }
                Ok(None) => break,
                Err(e) => return Err(err("usage", format!("bad batch sub-request: {e}"))),
            }
        }
        if decoder.finish().is_err() {
            return Err(err("usage", "batch payload ends inside a sub-request"));
        }
        if subs.is_empty() {
            return Err(err("usage", "batch carries no sub-requests"));
        }
        if let Some(sub) = subs
            .iter()
            .find(|f| !BATCH_VERBS.contains(&f.verb.as_str()))
        {
            return Err(err(
                "usage",
                format!("batch sub-request `{}` is not a read-only query", sub.verb),
            ));
        }
        Ok(subs)
    }

    /// Serves a decoded batch: each sub-request is answered in order
    /// and the encoded sub-replies ride back concatenated in one
    /// payload — one syscall round-trip for N queries. Sub-requests
    /// are tallied individually so batched traffic stays visible in
    /// the per-verb counters.
    fn batch(&self, req: &Frame) -> Frame {
        let subs = match Self::decode_batch(req) {
            Ok(subs) => subs,
            Err(reply) => return reply,
        };
        let mut body = String::new();
        let mut errors = 0usize;
        for sub in &subs {
            self.metrics.count_read(&sub.verb);
            let reply = self.dispatch_readonly(sub);
            if reply.verb == "error" {
                self.metrics.error(reply.get("code").unwrap_or("unknown"));
                errors += 1;
            }
            body.push_str(&reply.encode());
        }
        ok().arg("count", subs.len())
            .arg("errors", errors)
            .with_payload(body)
    }

    fn stats(&self) -> Frame {
        let mut reply = ok()
            .arg(
                "uptime_seconds",
                format!("{:.3}", self.started.elapsed().as_secs_f64()),
            )
            .arg("requests", self.metrics.requests_total())
            .arg("read_requests", self.metrics.read_total())
            .arg("write_requests", self.metrics.write_total())
            .arg("recoveries", self.metrics.recoveries.get())
            .arg("loads", self.loads)
            .arg("ecos", self.ecos)
            .arg("conn_buffer_bytes", self.metrics.buffer_bytes.get())
            .arg("conn_buffer_peak_bytes", self.metrics.buffer_bytes.peak());
        if let Some(l) = &self.loaded {
            let stats = l.cache.stats();
            reply = reply
                .arg("design", l.design.name())
                .arg("cached_items", l.cache.len())
                .arg("items_scheduled_total", stats.items_scheduled)
                .arg("items_reused_total", stats.items_reused)
                .arg("generation", l.generation)
                .arg("analyzed", u8::from(l.analyzed == Some(l.generation)));
        }
        reply
    }

    fn load(&mut self, req: &Frame) -> Frame {
        let Some(text) = req.payload.as_deref() else {
            return err("usage", "load needs the design text as payload");
        };
        if text.len() > MAX_LOAD_BYTES {
            return err(
                "limit",
                format!(
                    "design text is {} bytes; the session accepts at most {MAX_LOAD_BYTES}",
                    text.len()
                ),
            );
        }
        let format = req.get("format").unwrap_or("hum");
        let (design, clocks, timing) = match format {
            "hum" => match hb_io::parse_hum(text, &self.library) {
                Ok(file) => (file.design, file.clocks, file.timing),
                Err(e) => return err("parse", e),
            },
            "blif" => {
                let design = match hb_io::parse_blif(text, &self.library) {
                    Ok(d) => d,
                    Err(e) => return err("parse", e),
                };
                // BLIF carries no waveforms: clocks arrive as repeated
                // `clock=NAME:PERIOD:RISE:FALL` arguments.
                let mut clocks = ClockSet::new();
                for spec in req.get_all("clock") {
                    let parts: Vec<&str> = spec.split(':').collect();
                    let parsed = match parts.as_slice() {
                        [name, period, rise, fall] => {
                            match (period.parse(), rise.parse(), fall.parse()) {
                                (Ok(p), Ok(r), Ok(f)) => Some((*name, p, r, f)),
                                _ => None,
                            }
                        }
                        _ => None,
                    };
                    let Some((name, period, rise, fall)) = parsed else {
                        return err(
                            "usage",
                            format!("bad clock spec `{spec}` (want NAME:PERIOD:RISE:FALL)"),
                        );
                    };
                    if let Err(e) = clocks.add_clock(name, period, rise, fall) {
                        return err("usage", format!("bad clock `{spec}`: {e}"));
                    }
                }
                (design, clocks, Vec::new())
            }
            other => return err("usage", format!("unknown design format `{other}`")),
        };
        let Some(top) = design.top() else {
            return err("analysis", "the design has no `top` directive");
        };
        if let Err(e) = design.validate() {
            return err("analysis", format!("invalid design: {e}"));
        }
        let stats = design.stats(top);
        let reply = ok()
            .arg("design", design.name())
            .arg("cells", stats.cells)
            .arg("nets", stats.nets)
            .arg("clocks", clocks.len());
        self.loads += 1;
        self.loaded = Some(Loaded {
            design,
            top,
            clocks,
            timing,
            options: AnalysisOptions::default(),
            cache: SlackCache::new(),
            report: None,
            generation: 0,
            analyzed: None,
            with_constraints: false,
            parametric: None,
        });
        // Chaos hook: a panic here leaves the new design installed but
        // unacknowledged — recovery must roll back to the previous one.
        self.faults.maybe_panic(hb_fault::SESSION_LOAD_PANIC);
        reply
    }

    /// Applies `threads=` / `latch=` / `engine=` / `min-delays=`
    /// arguments to the loaded design's analysis options.
    fn apply_options(loaded: &mut Loaded, req: &Frame) -> Result<(), Frame> {
        let before = loaded.options;
        if let Some(v) = req.get("threads") {
            loaded.options.threads = v
                .parse()
                .map_err(|_| err("usage", format!("bad threads value `{v}`")))?;
        }
        if let Some(v) = req.get("latch") {
            loaded.options.latch_model = match v {
                "transparent" => LatchModel::Transparent,
                "edge" => LatchModel::EdgeTriggered,
                _ => return Err(err("usage", format!("bad latch model `{v}`"))),
            };
        }
        if let Some(v) = req.get("engine") {
            loaded.options.engine = match v {
                "sharded" => EngineKind::Sharded,
                "reference" => EngineKind::Reference,
                _ => return Err(err("usage", format!("bad engine kind `{v}`"))),
            };
        }
        if let Some(v) = req.get("min-delays") {
            loaded.options.check_min_delays = match v {
                "0" => false,
                "1" => true,
                _ => return Err(err("usage", format!("bad min-delays flag `{v}`"))),
            };
        }
        if loaded.options != before {
            // The parametric table was built under the old options.
            loaded.parametric = None;
        }
        Ok(())
    }

    /// Re-runs the analysis through the session cache. `constraints`
    /// selects Algorithm 2 on top of Algorithm 1.
    fn reanalyze(&mut self, constraints: bool) -> Result<(), Frame> {
        let Some(loaded) = self.loaded.as_mut() else {
            return Err(err("no-design", "no design loaded"));
        };
        let spec = spec_from_directives(&loaded.design, loaded.top, &loaded.clocks, &loaded.timing)
            .map_err(|e| err("analysis", e))?;
        let analyzer = Analyzer::with_options(
            &loaded.design,
            loaded.top,
            &self.library,
            &loaded.clocks,
            spec,
            loaded.options,
        )
        .map_err(|e| err("analysis", e))?;
        let report = if constraints {
            analyzer.generate_constraints_with_cache(&mut loaded.cache)
        } else {
            analyzer.analyze_with_cache(&mut loaded.cache)
        };
        loaded.report = Some(report);
        loaded.analyzed = Some(loaded.generation);
        loaded.with_constraints = constraints;
        Ok(())
    }

    /// Makes sure a current report exists, running Algorithm 1 if the
    /// design changed since the last analysis.
    fn ensure_analyzed(&mut self) -> Result<(), Frame> {
        let stale = match &self.loaded {
            None => return Err(err("no-design", "no design loaded")),
            Some(l) => l.analyzed != Some(l.generation),
        };
        if stale {
            self.reanalyze(false)?;
        }
        Ok(())
    }

    /// Makes sure a current-generation parametric (what-if) table
    /// exists, running one symbolic analysis if the design changed
    /// since the last build. Once built, every `min-period` /
    /// `slack-at` / `period-sweep` on this generation is answered
    /// straight from the table — no engine sweeps.
    fn ensure_parametric(&mut self) -> Result<(), Frame> {
        if self.param_settled() {
            return Ok(());
        }
        let Some(loaded) = self.loaded.as_mut() else {
            return Err(err("no-design", "no design loaded"));
        };
        let spec = spec_from_directives(&loaded.design, loaded.top, &loaded.clocks, &loaded.timing)
            .map_err(|e| err("analysis", e))?;
        let table = Analyzer::with_options(
            &loaded.design,
            loaded.top,
            &self.library,
            &loaded.clocks,
            spec,
            loaded.options,
        )
        .map_err(|e| err("analysis", e))?
        .parametric()
        .map_err(|e| err("analysis", e))?;
        loaded.parametric = Some((loaded.generation, table));
        Ok(())
    }

    /// The settled parametric table; callable only after
    /// `ensure_parametric` (write path) or `param_settled` (read path).
    fn parametric_table(&self) -> (&Loaded, &ParametricSlack) {
        let loaded = self.loaded.as_ref().expect("parametric before dispatch");
        let (_, table) = loaded
            .parametric
            .as_ref()
            .expect("parametric before dispatch");
        (loaded, table)
    }

    /// `min-period`: the smallest feasible overall period, solved
    /// directly from the piecewise-linear breakpoints of the symbolic
    /// table — no search, no sweeps.
    fn min_period(&self) -> Frame {
        let (_, param) = self.parametric_table();
        let (lo, hi) = param.domain();
        // `ok=` mirrors `feasible=` so `hummingbird query` maps an
        // infeasible design to exit code 1, like `analyze` does.
        let base = match param.min_feasible_period() {
            Some(p) => ok().arg("period", p).arg("feasible", 1).arg("ok", 1),
            None => ok().arg("feasible", 0).arg("ok", 0),
        };
        base.arg("stride", param.stride())
            .arg("lo", lo)
            .arg("hi", hi)
            .arg("regions", param.region_count())
            .arg("nominal", param.nominal_period())
    }

    /// `slack-at period=P [node=N]`: O(1) slack evaluation at an
    /// arbitrary grid period — bit-identical to a cold numeric
    /// analysis at that period, without running one.
    fn slack_at(&self, req: &Frame) -> Frame {
        let (loaded, param) = self.parametric_table();
        let Some(pstr) = req.get("period") else {
            return err(
                "usage",
                "slack-at needs period=P (e.g. 12ns, 12.5ns or 12500)",
            );
        };
        let Ok(period) = pstr.parse::<Time>() else {
            return err("usage", format!("bad period `{pstr}`"));
        };
        let worst = match param.worst_at(period) {
            Ok(w) => w,
            Err(e) => return err("period", e),
        };
        let Some(name) = req.get("node") else {
            let feasible = param.ok_at(period).expect("located above");
            return ok()
                .arg("period", period)
                .arg("worst", worst)
                .arg("ok", u8::from(feasible));
        };
        let module = loaded.design.module(loaded.top);
        if let Some(net) = module.net_by_name(name) {
            let slack = param.net_slack_at(period, net).expect("located above");
            return ok()
                .arg("node", name)
                .arg("kind", "net")
                .arg("period", period)
                .arg("slack", slack);
        }
        // Terminal slacks of a synchronising instance or boundary
        // port, mirroring the `slack` reply shape plus the period.
        let matching: Vec<(usize, &hummingbird::ParametricTerminal)> = param
            .terminals()
            .iter()
            .enumerate()
            .filter(|(_, t)| t.name == name)
            .collect();
        if matching.is_empty() {
            return err("unknown-node", format!("no net or terminal named `{name}`"));
        }
        let mut body = String::new();
        let mut worst_term = None;
        for (idx, t) in &matching {
            let slack = param
                .terminal_slack_at(period, *idx)
                .expect("located above");
            body.push_str(&format!(
                "{} pulse {} slack {}\n",
                kind_str(t.kind),
                t.pulse,
                slack
            ));
            worst_term = Some(match worst_term {
                None => slack,
                Some(w) => slack.min(w),
            });
        }
        ok().arg("node", name)
            .arg("kind", "terminal")
            .arg("period", period)
            .arg("slack", worst_term.expect("matching is non-empty"))
            .with_payload(body)
    }

    /// `period-sweep lo=A hi=B step=S`: batch-evaluates feasibility
    /// and worst slack across a period range in one frame. Each point
    /// is snapped to the parametric grid; consecutive points snapping
    /// to the same grid period collapse into one line.
    fn period_sweep(&self, req: &Frame) -> Frame {
        let (_, param) = self.parametric_table();
        let get_time = |key: &str| -> Result<Time, Frame> {
            let Some(v) = req.get(key) else {
                return Err(err("usage", "period-sweep needs lo=A hi=B step=S"));
            };
            v.parse::<Time>()
                .map_err(|_| err("usage", format!("bad {key} value `{v}`")))
        };
        let (lo, hi, step) = match (get_time("lo"), get_time("hi"), get_time("step")) {
            (Ok(lo), Ok(hi), Ok(step)) => (lo, hi, step),
            (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => return e,
        };
        if step <= Time::ZERO {
            return err("usage", "period-sweep step must be positive");
        }
        if lo > hi {
            return err("usage", "period-sweep needs lo <= hi");
        }
        let mut body = String::new();
        let mut count = 0usize;
        let mut worst_overall = Time::INF;
        let mut all_ok = true;
        let mut last = None;
        let mut p = lo;
        while p <= hi {
            let snapped = param.snap(p);
            if last != Some(snapped) {
                count += 1;
                if count > MAX_SWEEP_POINTS {
                    return err(
                        "limit",
                        format!("period-sweep exceeds {MAX_SWEEP_POINTS} grid points"),
                    );
                }
                let worst = param.worst_at(snapped).expect("snapped onto the grid");
                let feasible = param.ok_at(snapped).expect("snapped onto the grid");
                worst_overall = worst_overall.min(worst);
                all_ok &= feasible;
                body.push_str(&format!(
                    "period {snapped} worst {worst} ok {}\n",
                    u8::from(feasible)
                ));
                last = Some(snapped);
            }
            p = p.saturating_add(step);
        }
        ok().arg("count", count)
            .arg("ok", u8::from(all_ok))
            .arg("worst", worst_overall)
            .with_payload(body)
    }

    /// A reply summarising the current report: verdict, worst slack,
    /// cache reuse of the producing run, and the human-readable report
    /// as payload.
    fn report_reply(&self) -> Frame {
        let report = self.last_report().expect("reanalyze succeeded");
        let stats = report.engine_stats();
        ok().arg("ok", u8::from(report.ok()))
            .arg("worst", report.worst_slack())
            .arg("period", report.overall_period())
            .arg("items_reused", stats.items_reused)
            .arg("items_swept", stats.items_swept())
            .arg("seconds", format!("{:.6}", report.analysis_seconds()))
            .with_payload(report.to_string())
    }

    fn analyze(&mut self, req: &Frame) -> Frame {
        if let Some(loaded) = self.loaded.as_mut() {
            if let Err(reply) = Self::apply_options(loaded, req) {
                return reply;
            }
        }
        if let Err(reply) = self.reanalyze(false) {
            return reply;
        }
        self.report_reply()
    }

    fn constraints(&mut self, req: &Frame) -> Frame {
        if let Some(loaded) = self.loaded.as_mut() {
            if let Err(reply) = Self::apply_options(loaded, req) {
                return reply;
            }
        }
        if let Err(reply) = self.reanalyze(true) {
            return reply;
        }
        let loaded = self.loaded.as_ref().expect("reanalyze succeeded");
        let report = loaded.report.as_ref().expect("reanalyze succeeded");
        let constraints = report.constraints().expect("generated with constraints");
        let module = loaded.design.module(loaded.top);
        let mut body = String::new();
        for (net, n) in module.nets() {
            if let (Some(r), Some(q)) = (constraints.ready_at(net), constraints.required_at(net)) {
                body.push_str(&format!("{} {} {}\n", n.name(), r, q));
            }
        }
        self.report_reply().with_payload(body)
    }

    fn slack(&self, req: &Frame) -> Frame {
        let Some(loaded) = &self.loaded else {
            return err("no-design", "no design loaded");
        };
        let report = loaded.report.as_ref().expect("analyzed before dispatch");
        let nodes: Vec<&str> = req.get_all("node").collect();
        match nodes.as_slice() {
            [] => err(
                "usage",
                "slack needs node=NAME (repeatable for a batched query)",
            ),
            [name] => Self::slack_one(loaded, report, name),
            names => {
                // Batched form: `slack node=A node=B ...` answers every
                // node in one frame — count, worst across the set, and
                // one `NAME kind SLACK` payload line per node, in
                // request order. Duplicate `node=` keys collapse to
                // their first occurrence, so `count` is the number of
                // *distinct* nodes answered and no payload line
                // repeats. One unresolvable name fails the whole
                // request; a partial answer would be ambiguous.
                let mut unique: Vec<&str> = Vec::with_capacity(names.len());
                for name in names {
                    if !unique.contains(name) {
                        unique.push(name);
                    }
                }
                let module = loaded.design.module(loaded.top);
                let mut body = String::with_capacity(unique.len() * 24);
                let mut worst = None;
                for name in &unique {
                    let (kind, slack) = if let Some(net) = module.net_by_name(name) {
                        ("net", report.net_slack(net))
                    } else if let Some(s) = report
                        .terminal_slacks()
                        .iter()
                        .filter(|t| t.name == *name)
                        .map(|t| t.slack)
                        .min()
                    {
                        ("terminal", s)
                    } else {
                        return err("unknown-node", format!("no net or terminal named `{name}`"));
                    };
                    worst = Some(match worst {
                        None => slack,
                        Some(w) => slack.min(w),
                    });
                    body.push_str(&format!("{name} {kind} {slack}\n"));
                }
                ok().arg("count", unique.len())
                    .arg("worst", worst.expect("names is non-empty"))
                    .with_payload(body)
            }
        }
    }

    /// The single-node `slack` reply — the original wire shape, kept
    /// bit-for-bit stable for existing clients and transcripts.
    fn slack_one(loaded: &Loaded, report: &TimingReport, name: &str) -> Frame {
        let module = loaded.design.module(loaded.top);
        if let Some(net) = module.net_by_name(name) {
            return ok()
                .arg("node", name)
                .arg("kind", "net")
                .arg("slack", report.net_slack(net));
        }
        // Terminal slacks of a synchronising instance or boundary port:
        // report the most critical one, list all in the payload.
        let matching: Vec<_> = report
            .terminal_slacks()
            .iter()
            .filter(|t| t.name == name)
            .collect();
        if let Some(worst) = matching.iter().map(|t| t.slack).min() {
            let mut body = String::new();
            for t in &matching {
                body.push_str(&format!(
                    "{} pulse {} slack {}\n",
                    kind_str(t.kind),
                    t.pulse,
                    t.slack
                ));
            }
            return ok()
                .arg("node", name)
                .arg("kind", "terminal")
                .arg("slack", worst)
                .with_payload(body);
        }
        err("unknown-node", format!("no net or terminal named `{name}`"))
    }

    fn worst_paths(&self, req: &Frame) -> Frame {
        let Some(loaded) = &self.loaded else {
            return err("no-design", "no design loaded");
        };
        let report = loaded.report.as_ref().expect("analyzed before dispatch");
        let k: usize = match req.get("k").map(str::parse) {
            None => 5,
            Some(Ok(k)) => k,
            Some(Err(_)) => return err("usage", "bad k value"),
        };
        if k > MAX_WORST_PATHS {
            return err(
                "limit",
                format!("k={k} exceeds the worst-paths limit of {MAX_WORST_PATHS}"),
            );
        }
        let mut body = String::new();
        let mut count = 0usize;
        for path in report.slow_paths().iter().take(k) {
            count += 1;
            body.push_str(&format!(
                "path into {} slack {} ({} steps)\n",
                path.endpoint,
                path.slack,
                path.steps.len()
            ));
            for step in &path.steps {
                match &step.through {
                    Some(inst) => body.push_str(&format!(
                        "  -> {} via {} at {}\n",
                        step.net, inst, step.time
                    )),
                    None => body.push_str(&format!("  from {} at {}\n", step.net, step.time)),
                }
            }
        }
        ok().arg("count", count).with_payload(body)
    }

    fn eco(&mut self, req: &Frame) -> Frame {
        let op = match Self::parse_eco(req) {
            Ok(op) => op,
            Err(reply) => return reply,
        };
        let Some(loaded) = self.loaded.as_mut() else {
            return err("no-design", "no design loaded");
        };
        let outcome = match apply_eco(&mut loaded.design, loaded.top, &self.library, &op) {
            Ok(outcome) => outcome,
            Err(e) => return err("eco", e),
        };
        loaded.generation += 1;
        self.ecos += 1;
        // Chaos hook: the worst place to die — the design is mutated
        // but not re-analyzed and the client never hears `ok`.
        self.faults.maybe_panic(hb_fault::SESSION_ECO_PANIC);
        // Re-analyze immediately through the persistent cache: the
        // reply's reuse counters are the incremental-value measurement.
        let constraints = self.loaded.as_ref().expect("loaded above").with_constraints;
        if let Err(reply) = self.reanalyze(constraints) {
            return reply;
        }
        self.report_reply().arg("desc", outcome.description)
    }

    /// Decodes an `eco` request: `op=resize inst=I steps=N` or
    /// `op=scale-net net=X percent=P`.
    fn parse_eco(req: &Frame) -> Result<EcoOp, Frame> {
        match req.get("op") {
            Some("resize") => {
                let inst = req
                    .get("inst")
                    .ok_or_else(|| err("usage", "eco resize needs inst=NAME"))?;
                let steps = match req.get("steps").map(str::parse) {
                    None => 1,
                    Some(Ok(s)) => s,
                    Some(Err(_)) => return Err(err("usage", "bad steps value")),
                };
                Ok(EcoOp::RetargetDrive {
                    inst: inst.to_owned(),
                    steps,
                })
            }
            Some("scale-net") => {
                let net = req
                    .get("net")
                    .ok_or_else(|| err("usage", "eco scale-net needs net=NAME"))?;
                let percent = match req.get("percent").map(str::parse) {
                    None => return Err(err("usage", "eco scale-net needs percent=P")),
                    Some(Ok(p)) => p,
                    Some(Err(_)) => return Err(err("usage", "bad percent value")),
                };
                Ok(EcoOp::ScaleNetLoad {
                    net: net.to_owned(),
                    percent,
                })
            }
            Some(other) => Err(err("usage", format!("unknown eco op `{other}`"))),
            None => Err(err("usage", "eco needs op=resize|scale-net")),
        }
    }

    fn dump(&self) -> Frame {
        let Some(loaded) = &self.loaded else {
            return err("no-design", "no design loaded");
        };
        let text = hb_io::write_hum_with_timing(&loaded.design, &loaded.clocks, &loaded.timing);
        ok().arg("design", loaded.design.name()).with_payload(text)
    }
}
