//! Algorithm-level benchmarks: slack-transfer iteration cost vs clock
//! speed (Section 8: run times "depend upon the specified clock
//! speeds"), and constraint generation (Algorithm 2) on top of
//! Algorithm 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hb_cells::sc89;
use hb_workloads::latch_pipeline;
use hummingbird::Analyzer;

fn bench_algorithm1_vs_clock(c: &mut Criterion) {
    let lib = sc89();
    let mut group = c.benchmark_group("algorithm1/clock_sweep");
    group.sample_size(10);
    for period_ns in [10i64, 14, 20] {
        let w = latch_pipeline(&lib, 6, 8, 11, period_ns);
        let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
            .expect("conforming workload");
        group.bench_with_input(
            BenchmarkId::from_parameter(period_ns),
            &analyzer,
            |b, a| b.iter(|| a.analyze()),
        );
    }
    group.finish();
}

fn bench_constraint_generation(c: &mut Criterion) {
    let lib = sc89();
    let mut group = c.benchmark_group("algorithm2/constraints");
    group.sample_size(10);
    let w = latch_pipeline(&lib, 6, 8, 11, 14);
    let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
        .expect("conforming workload");
    group.bench_function("latch_pipeline_14ns", |b| {
        b.iter(|| analyzer.generate_constraints())
    });
    group.finish();
}

criterion_group!(benches, bench_algorithm1_vs_clock, bench_constraint_generation);
criterion_main!(benches);
