//! Reproduces the Section 8 observation: "the number of iterations
//! required, and hence the run times, depend upon the specified clock
//! speeds."
//!
//! A two-phase transparent-latch pipeline is analyzed across a sweep of
//! clock periods. Near the feasibility boundary, Algorithm 1 must shift
//! slack back and forth through the latch windows (more complete and
//! partial transfer cycles); with a comfortable clock the first slack
//! evaluation already succeeds and the early-out fires.

use hb_cells::sc89;
use hb_workloads::latch_pipeline;
use hummingbird::Analyzer;

fn main() {
    let lib = sc89();
    println!("Iteration count vs clock period (two-phase latch pipeline)");
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8} {:>10} {:>6}",
        "period", "fwd", "bwd", "pfwd", "pbwd", "worst", "ok"
    );
    for period_ns in [8i64, 10, 12, 14, 16, 20, 30, 60] {
        let w = latch_pipeline(&lib, 6, 8, 11, period_ns);
        let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
            .expect("pipeline conforms");
        let report = analyzer.analyze();
        let s = report.algorithm1_stats();
        println!(
            "{:>8}ns {:>8} {:>8} {:>8} {:>8} {:>10} {:>6}",
            period_ns,
            s.forward_cycles,
            s.backward_cycles,
            s.partial_forward_cycles,
            s.partial_backward_cycles,
            report.worst_slack().to_string(),
            if report.ok() { "yes" } else { "no" }
        );
    }
}
