//! Transports for the resident session: a concurrent TCP daemon, a
//! single-threaded stdio loop for test harnesses, and a small blocking
//! client.
//!
//! The TCP server is thread-per-connection over one shared
//! [`Session`] behind an [`RwLock`]: read-only queries of a settled
//! analysis run concurrently; anything that may mutate (load, analyze,
//! eco) serialises on the write lock. Lock acquisition polls with a
//! per-request deadline so a long-running analysis degrades concurrent
//! requests into structured `busy` errors instead of unbounded stalls.
//!
//! Teardown is cooperative: `shutdown` flips a flag, closes the read
//! half of every connection (idle readers see EOF; in-flight replies
//! still flush over the untouched write halves), pokes the listener
//! loose with a loopback connection, and `run` then joins every
//! connection thread before returning — requests that were already
//! being served complete and their replies are flushed.
//! Peers that vanish mid-reply surface as ordinary write errors (Rust
//! ignores `SIGPIPE`), which close that connection only.

use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock, TryLockError};
use std::thread;
use std::time::{Duration, Instant};

use hb_cells::Library;
use hb_io::{write_frame, Frame, FrameReader, ProtoError};

use crate::session::Session;

/// Transport tuning.
#[derive(Clone, Copy, Debug)]
pub struct ServerOptions {
    /// How long one request may wait for the session lock before it is
    /// answered with `error code=busy`.
    pub lock_deadline: Duration,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            lock_deadline: Duration::from_secs(30),
        }
    }
}

struct Shared {
    session: RwLock<Session>,
    shutdown: AtomicBool,
    options: ServerOptions,
    /// Read-half handles of every accepted connection, so `shutdown`
    /// can unblock idle readers without cutting in-flight replies.
    conns: Mutex<Vec<TcpStream>>,
}

/// A bound, not-yet-running daemon. [`Server::run`] consumes it and
/// blocks until a client requests `shutdown`.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and prepares a
    /// fresh session over `library`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        library: Library,
        options: ServerOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                session: RwLock::new(Session::new(library)),
                shutdown: AtomicBool::new(false),
                options,
                conns: Mutex::new(Vec::new()),
            }),
        })
    }

    /// The bound address — needed when binding port 0.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a `shutdown` request, then drains
    /// in-flight connection threads and returns.
    ///
    /// # Errors
    ///
    /// Propagates listener failures; per-connection errors only close
    /// that connection.
    pub fn run(self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(&self.shared);
            workers.push(thread::spawn(move || {
                serve_connection(stream, &shared, addr)
            }));
            workers.retain(|w| !w.is_finished());
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// One connection's framing and teardown; the request loop proper is
/// [`serve_requests`]. Whatever ends the loop, the socket is shut down
/// on exit so the peer sees EOF rather than a half-dead connection.
fn serve_connection(stream: TcpStream, shared: &Shared, addr: SocketAddr) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    if let (Ok(clone), Ok(mut conns)) = (stream.try_clone(), shared.conns.lock()) {
        conns.push(clone);
    }
    let mut requests = FrameReader::new(BufReader::new(read_half));
    let mut replies = BufWriter::new(&stream);
    serve_requests(&mut requests, &mut replies, shared, addr);
    drop(replies);
    let _ = stream.shutdown(Shutdown::Both);
}

/// One connection's read/reply loop.
fn serve_requests(
    requests: &mut FrameReader<BufReader<TcpStream>>,
    replies: &mut BufWriter<&TcpStream>,
    shared: &Shared,
    addr: SocketAddr,
) {
    loop {
        match requests.read_frame() {
            Ok(Some(req)) => {
                let stop = req.verb == "shutdown";
                let reply = handle_with_deadline(shared, &req);
                let sent_ok = write_frame(replies, &reply).is_ok();
                if stop && reply.verb == "ok" {
                    shared.shutdown.store(true, Ordering::Release);
                    // Stop the intake everywhere: idle readers see EOF
                    // while in-flight replies still flush over the
                    // untouched write halves...
                    if let Ok(conns) = shared.conns.lock() {
                        for conn in conns.iter() {
                            let _ = conn.shutdown(Shutdown::Read);
                        }
                    }
                    // ...and unblock the accept loop so `run` can join.
                    let _ = TcpStream::connect(addr);
                    return;
                }
                if !sent_ok {
                    return; // peer closed mid-reply
                }
            }
            Ok(None) => return, // clean disconnect
            Err(ProtoError::Io(_)) => return,
            Err(e) => {
                let reply = Frame::new("error")
                    .arg("code", "proto")
                    .with_payload(e.to_string());
                if write_frame(replies, &reply).is_err() || !e.recoverable() {
                    return;
                }
            }
        }
    }
}

/// Routes a request through the session lock, degrading to `busy`
/// after the configured deadline. Read-only requests of a settled
/// analysis take the shared path and run concurrently.
fn handle_with_deadline(shared: &Shared, req: &Frame) -> Frame {
    let deadline = Instant::now() + shared.options.lock_deadline;
    let busy = || {
        Frame::new("error")
            .arg("code", "busy")
            .with_payload("session lock deadline exceeded")
    };
    loop {
        match shared.session.try_read() {
            Ok(session) => {
                if let Some(reply) = session.handle_readonly(req) {
                    return reply;
                }
                break; // needs the write path
            }
            Err(TryLockError::Poisoned(e)) => {
                return if let Some(reply) = e.get_ref().handle_readonly(req) {
                    reply
                } else {
                    poisoned()
                }
            }
            Err(TryLockError::WouldBlock) => {
                if Instant::now() >= deadline {
                    return busy();
                }
                thread::sleep(Duration::from_micros(250));
            }
        }
    }
    loop {
        match shared.session.try_write() {
            Ok(mut session) => return session.handle(req),
            Err(TryLockError::Poisoned(_)) => return poisoned(),
            Err(TryLockError::WouldBlock) => {
                if Instant::now() >= deadline {
                    return busy();
                }
                thread::sleep(Duration::from_micros(250));
            }
        }
    }
}

fn poisoned() -> Frame {
    Frame::new("error")
        .arg("code", "poisoned")
        .with_payload("a previous request panicked while holding the session")
}

/// Serves one session over arbitrary byte streams — the `--stdio`
/// mode test harnesses drive. Single-threaded: requests are answered
/// in order until `shutdown`, end-of-input, or an unrecoverable
/// protocol error.
///
/// # Errors
///
/// Propagates write failures on `output`; read-side protocol errors
/// are answered in-band and only unrecoverable ones end the loop.
pub fn serve_stream(
    library: Library,
    input: impl io::BufRead,
    output: &mut impl io::Write,
) -> io::Result<()> {
    let mut session = Session::new(library);
    let mut requests = FrameReader::new(input);
    loop {
        match requests.read_frame() {
            Ok(Some(req)) => {
                let stop = req.verb == "shutdown";
                let reply = session.handle(&req);
                write_frame(output, &reply)?;
                if stop && reply.verb == "ok" {
                    return Ok(());
                }
            }
            Ok(None) => return Ok(()),
            Err(ProtoError::Io(e)) => return Err(e),
            Err(e) => {
                let reply = Frame::new("error")
                    .arg("code", "proto")
                    .with_payload(e.to_string());
                write_frame(output, &reply)?;
                if !e.recoverable() {
                    return Ok(());
                }
            }
        }
    }
}

/// A blocking request/reply client for the daemon protocol.
pub struct Client {
    requests: TcpStream,
    replies: FrameReader<BufReader<TcpStream>>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone()?;
        Ok(Client {
            requests: stream,
            replies: FrameReader::new(BufReader::new(read_half)),
        })
    }

    /// Sends one request and waits for its reply.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] on transport failure or a malformed
    /// reply; [`ProtoError::Truncated`] when the server closed without
    /// replying.
    pub fn request(&mut self, frame: &Frame) -> Result<Frame, ProtoError> {
        write_frame(&mut self.requests, frame)?;
        self.replies.read_frame()?.ok_or(ProtoError::Truncated)
    }
}
