//! In-memory hierarchical design database — the workspace's substitute for
//! the Berkeley OCT database that the original Hummingbird program used.
//!
//! The database stores a [`Design`]: a set of named leaf-cell interface
//! declarations ([`LeafDef`]) plus a set of [`Module`]s. A module contains
//! [`Instance`]s (of leaf cells or of other modules), [`Net`]s, and boundary
//! [`Port`]s. Connectivity is normalized: every net knows its endpoints, and
//! every instance knows the net bound to each of its pin slots.
//!
//! Design rules enforced by [`Design::validate`]:
//!
//! * every net has exactly one driver (an instance output pin or a module
//!   input port);
//! * every instance input pin slot is connected (dangling outputs are
//!   allowed);
//! * names are unique within their namespace.
//!
//! The timing analyzer never mutates a design; the re-synthesis loop
//! (Algorithm 3 of the paper) does, through [`Design::replace_instance_ref`]
//! and the net editing methods — this mirrors how the original program
//! round-tripped edits through OCT.
//!
//! # Examples
//!
//! Build an inverter chain and query connectivity:
//!
//! ```
//! use hb_netlist::{Design, LeafDef, PinDir};
//!
//! # fn main() -> Result<(), hb_netlist::NetlistError> {
//! let mut design = Design::new("demo");
//! let inv = design.declare_leaf(LeafDef::new("INV")
//!     .pin("A", PinDir::Input)
//!     .pin("Y", PinDir::Output))?;
//!
//! let m = design.add_module("top")?;
//! let a = design.add_net(m, "a")?;
//! let b = design.add_net(m, "b")?;
//! let y = design.add_net(m, "y")?;
//! design.add_port(m, "a", PinDir::Input, a)?;
//! design.add_port(m, "y", PinDir::Output, y)?;
//!
//! let u1 = design.add_leaf_instance(m, "u1", inv)?;
//! let u2 = design.add_leaf_instance(m, "u2", inv)?;
//! design.connect(m, u1, "A", a)?;
//! design.connect(m, u1, "Y", b)?;
//! design.connect(m, u2, "A", b)?;
//! design.connect(m, u2, "Y", y)?;
//!
//! design.set_top(m)?;
//! design.validate()?;
//! assert_eq!(design.module(m).instances().count(), 2);
//! # Ok(())
//! # }
//! ```

mod design;
mod error;
mod flatten;
mod ids;
mod leaf;
mod module;
mod validate;

pub use design::{Design, DesignStats};
pub use error::NetlistError;
pub use ids::{InstId, LeafId, ModuleId, NetId, PinSlot, PortId};
pub use leaf::{LeafDef, PinDef, PinDir};
pub use module::{Endpoint, InstRef, Instance, Module, Net, Port};
