//! Property-based tests of the timeline and pass-minimisation machinery.

use hb_clock::{ClockSet, EdgeGraph, Requirement};
use hb_units::{Sense, Time};
use proptest::prelude::*;

/// A random harmonically related clock set: a base period with 1–4
/// clocks at divisors of it, each with a random non-degenerate pulse.
fn clock_set_strategy() -> impl Strategy<Value = ClockSet> {
    (
        2i64..6, // base period in 12 ns units (divisible by 1..=4)
        prop::collection::vec((1i64..5, 0i64..100, 1i64..99), 1..4),
    )
        .prop_map(|(base, specs)| {
            let mut set = ClockSet::new();
            let base_ps = base * 12_000;
            for (i, (div, rise_pct, width_pct)) in specs.into_iter().enumerate() {
                // True harmonic divisors keep the overall period equal to
                // the base (12 is divisible by 1..=4), so edge counts stay
                // small.
                let period = base_ps / div;
                let rise = period * (rise_pct % 100) / 100;
                let width = (period * width_pct / 100).max(1);
                let fall = (rise + width) % period;
                let fall = if fall == rise { (rise + 1) % period } else { fall };
                // Degenerate corners can still collide; skip those clocks.
                let _ = set.add_clock(
                    format!("c{i}"),
                    Time::from_ps(period),
                    Time::from_ps(rise),
                    Time::from_ps(fall),
                );
            }
            if set.is_empty() {
                set.add_clock("fallback", Time::from_ns(10), Time::ZERO, Time::from_ns(5))
                    .expect("valid");
            }
            set
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Edge times are sorted, within the overall period, and pulses pair
    /// lead/trail edges `width` apart.
    #[test]
    fn timeline_is_well_formed(set in clock_set_strategy()) {
        let tl = set.timeline();
        let overall = tl.overall_period();
        let mut last = Time::from_ps(-1);
        for (_, e) in tl.edges() {
            prop_assert!(Time::ZERO <= e.time && e.time < overall);
            prop_assert!(e.time >= last);
            last = e.time;
        }
        for (id, clock) in set.clocks() {
            let n = (overall / clock.period()) as usize;
            for sense in [Sense::Positive, Sense::Negative] {
                let pulses = tl.pulses(id, sense);
                prop_assert_eq!(pulses.len(), n);
                for p in pulses {
                    let lead = tl.edge_time(p.lead);
                    let trail = tl.edge_time(p.trail);
                    prop_assert_eq!((trail - lead).rem_euclid_end(clock.period()), p.width);
                }
            }
        }
    }

    /// `minimal_passes` covers every requirement, and the
    /// closure-latest pass of each requirement's close edge satisfies it.
    #[test]
    fn pass_plans_cover_all_requirements(
        set in clock_set_strategy(),
        picks in prop::collection::vec((0usize..64, 0usize..64), 0..24),
    ) {
        let tl = set.timeline();
        let ids: Vec<_> = tl.edges().map(|(id, _)| id).collect();
        let reqs: Vec<Requirement> = picks
            .into_iter()
            .map(|(a, c)| Requirement {
                assert_edge: ids[a % ids.len()],
                close_edge: ids[c % ids.len()],
            })
            .collect();
        let graph = EdgeGraph::new(&tl);
        let plan = graph.minimal_passes(&reqs);
        prop_assert!(plan.pass_count() >= 1);
        for r in &reqs {
            let a = tl.edge_time(r.assert_edge);
            let c = tl.edge_time(r.close_edge);
            let covered = (0..plan.pass_count()).any(|p| plan.satisfies(p, a, c));
            prop_assert!(covered, "requirement {r:?} not covered");
            let chosen = plan.pass_for_closure(c);
            prop_assert!(plan.satisfies(chosen, a, c), "closure-latest pass misses {r:?}");
        }
    }

    /// The minimal plan never uses more passes than one per distinct
    /// closure edge (the trivial upper bound: break just after each).
    #[test]
    fn pass_count_is_bounded_by_distinct_closures(
        set in clock_set_strategy(),
        picks in prop::collection::vec((0usize..64, 0usize..64), 1..24),
    ) {
        let tl = set.timeline();
        let ids: Vec<_> = tl.edges().map(|(id, _)| id).collect();
        let reqs: Vec<Requirement> = picks
            .into_iter()
            .map(|(a, c)| Requirement {
                assert_edge: ids[a % ids.len()],
                close_edge: ids[c % ids.len()],
            })
            .collect();
        let distinct_closures = {
            let mut times: Vec<Time> = reqs.iter().map(|r| tl.edge_time(r.close_edge)).collect();
            times.sort();
            times.dedup();
            times.len()
        };
        let graph = EdgeGraph::new(&tl);
        let plan = graph.minimal_passes(&reqs);
        prop_assert!(plan.pass_count() <= distinct_closures.max(1));
    }

    /// Ideal path constraints are in `(0, overall]` and respect the
    /// next-occurrence semantics.
    #[test]
    fn ideal_constraints_are_in_range(set in clock_set_strategy()) {
        let tl = set.timeline();
        let overall = tl.overall_period();
        let ids: Vec<_> = tl.edges().map(|(id, _)| id).collect();
        for &a in &ids {
            for &c in &ids {
                let d = tl.ideal_constraint(a, c);
                prop_assert!(Time::ZERO < d && d <= overall);
                if tl.edge_time(a) == tl.edge_time(c) {
                    prop_assert_eq!(d, overall);
                }
            }
        }
    }
}
