//! Ablation: Hitchcock's block method vs naive path enumeration for
//! slack computation (Section 7: "Such a path enumeration procedure is
//! computationally expensive… we decided to use the straight block
//! analysis method").
//!
//! Both compute identical maximum arrival times; the block method is a
//! single topological sweep while enumeration visits every path, whose
//! count grows exponentially with reconvergent depth.

use hb_bench::microbench::bench;
use hb_cells::{sc89, Binding};
use hb_netlist::NetId;
use hb_sta::analysis::{propagate_ready_max, table};
use hb_sta::paths::enumerate_max_arrival;
use hb_sta::TimingGraph;
use hb_units::{RiseFall, Time};
use hb_workloads::{random_pipeline, PipelineParams};

fn fixture(gates: usize) -> (TimingGraph, Vec<NetId>) {
    let lib = sc89();
    let w = random_pipeline(
        &lib,
        PipelineParams {
            stages: 1,
            width: 8,
            gates_per_stage: gates,
            transparent: false,
            period_ns: 100,
            seed: 42,
            imbalance_pct: 0,
        },
    );
    let binding = Binding::new(&w.design, &lib);
    let graph = TimingGraph::build(&w.design, w.module, &binding, &lib)
        .expect("generated pipelines are acyclic");
    // Seeds: every synchronising-element output.
    let seeds = graph.syncs().iter().filter_map(|s| s.output_net).collect();
    (graph, seeds)
}

fn main() {
    for gates in [40usize, 80, 160] {
        let (graph, seeds) = fixture(gates);
        bench(&format!("block_vs_paths/block/{gates}"), 2, 10, || {
            let mut ready = table(&graph, Time::NEG_INF);
            for &net in &seeds {
                ready[net.as_raw() as usize] = RiseFall::ZERO;
            }
            propagate_ready_max(&graph, &mut ready);
            ready
        });
        let seed_pairs: Vec<(NetId, RiseFall<Time>)> =
            seeds.iter().map(|&n| (n, RiseFall::ZERO)).collect();
        bench(&format!("block_vs_paths/enumerate/{gates}"), 2, 10, || {
            enumerate_max_arrival(&graph, &seed_pairs, 2_000_000)
        });
    }
}
