//! Cluster-sharded CSR subgraphs for per-`(cluster, pass)` sweeps.
//!
//! The dense tables in [`crate::analysis`] span the whole graph even
//! though every sweep only ever moves values *within* one cluster (arcs
//! never cross cluster boundaries by construction). A [`ShardedGraph`]
//! re-packs each cluster into a compact subgraph with local node
//! indices in topological order and CSR fanin/fanout arc arrays, so a
//! per-cluster sweep touches `O(cluster)` memory instead of
//! `O(graph)` — and independent `(cluster, pass)` sweeps can run on
//! different threads without sharing mutable state.
//!
//! The local sweeps mirror [`crate::analysis::propagate_ready_max`]
//! and [`crate::analysis::propagate_required`] operation for
//! operation; because all merges are exact `i64` max/min, a local
//! sweep scattered back into a dense table is bit-identical to the
//! whole-graph sweep.

use hb_netlist::NetId;
use hb_units::{RiseFall, Time};

use crate::analysis::required_backward;
use crate::graph::{ClusterId, TimingGraph};

/// One arc of a [`ClusterShard`], with endpoints as local indices and
/// only the max-delay half (the min half stays on the whole-graph path
/// used by the supplementary checks).
#[derive(Clone, Copy, Debug)]
pub struct LocalArc {
    /// Local index of the driving net.
    pub from: u32,
    /// Local index of the driven net.
    pub to: u32,
    /// The arc's unateness.
    pub sense: hb_units::Sense,
    /// The arc's maximum rise/fall delay.
    pub delay_max: RiseFall<Time>,
}

/// A compact per-cluster subgraph: nets renumbered to `0..len` in
/// topological order, arcs in CSR form.
#[derive(Clone, Debug)]
pub struct ClusterShard {
    cluster: ClusterId,
    /// Local index → global net, in topological order.
    nets: Vec<NetId>,
    arcs: Vec<LocalArc>,
    /// CSR heads over local nodes into `fanout_arcs` (len `len + 1`).
    fanout_heads: Vec<u32>,
    fanout_arcs: Vec<u32>,
    /// CSR heads over local nodes into `fanin_arcs` (len `len + 1`).
    fanin_heads: Vec<u32>,
    fanin_arcs: Vec<u32>,
}

impl ClusterShard {
    /// The cluster this shard packs.
    pub fn cluster(&self) -> ClusterId {
        self.cluster
    }

    /// The number of member nets.
    pub fn len(&self) -> usize {
        self.nets.len()
    }

    /// Whether the cluster has no member nets.
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }

    /// The number of member arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Member nets in topological order; position is the local index.
    pub fn nets(&self) -> &[NetId] {
        &self.nets
    }

    /// The arcs leaving local node `u`, in the exact order
    /// [`ClusterShard::sweep_ready_max`] visits them. External engines
    /// that must replay a sweep operation for operation (e.g. the
    /// symbolic parametric engine) iterate these instead of duplicating
    /// the CSR layout.
    pub fn fanout(&self, u: usize) -> impl Iterator<Item = &LocalArc> + '_ {
        self.fanout_arcs[self.fanout_heads[u] as usize..self.fanout_heads[u + 1] as usize]
            .iter()
            .map(move |&ai| &self.arcs[ai as usize])
    }

    /// The arcs entering local node `v`, in the exact order
    /// [`ClusterShard::sweep_required`] visits them.
    pub fn fanin(&self, v: usize) -> impl Iterator<Item = &LocalArc> + '_ {
        self.fanin_arcs[self.fanin_heads[v] as usize..self.fanin_heads[v + 1] as usize]
            .iter()
            .map(move |&ai| &self.arcs[ai as usize])
    }

    /// A local table filled with the given sentinel.
    pub fn table(&self, fill: Time) -> Vec<RiseFall<Time>> {
        vec![RiseFall::splat(fill); self.nets.len()]
    }

    /// Forward maximum-arrival sweep over the shard — the local
    /// equivalent of [`crate::analysis::propagate_ready_max`]. Seeds
    /// must already be placed; unreached nodes keep [`Time::NEG_INF`].
    pub fn sweep_ready_max(&self, ready: &mut [RiseFall<Time>]) {
        debug_assert_eq!(ready.len(), self.nets.len());
        for u in 0..self.nets.len() {
            let at = ready[u];
            if at.rise <= Time::NEG_INF && at.fall <= Time::NEG_INF {
                continue;
            }
            let arcs =
                &self.fanout_arcs[self.fanout_heads[u] as usize..self.fanout_heads[u + 1] as usize];
            for &ai in arcs {
                let arc = &self.arcs[ai as usize];
                let out = arc.sense.propagate(at, arc.delay_max);
                let slot = &mut ready[arc.to as usize];
                *slot = (*slot).max(out);
            }
        }
    }

    /// A structural fingerprint of the shard's timing content: member
    /// nets, arc topology, arc senses and max delays. Two shards with
    /// equal fingerprints sweep seeded tables identically, so a cached
    /// sweep result is reusable across design edits iff the fingerprint
    /// (and the dynamic seed values) did not change. An ECO that
    /// retargets a drive or rescales a net load changes the affected
    /// arc delays and therefore this hash; untouched clusters keep
    /// theirs.
    pub fn fingerprint(&self) -> u64 {
        let mut h = hb_rng::mix64(0x6875_6d6d_6269_7264, self.nets.len() as u64);
        for &net in &self.nets {
            h = hb_rng::mix64(h, net.as_raw() as u64);
        }
        h = hb_rng::mix64(h, self.arcs.len() as u64);
        for arc in &self.arcs {
            h = hb_rng::mix64(h, (arc.from as u64) << 32 | arc.to as u64);
            h = hb_rng::mix64(h, arc.sense as u64);
            h = hb_rng::mix64(h, arc.delay_max.rise.as_ps() as u64);
            h = hb_rng::mix64(h, arc.delay_max.fall.as_ps() as u64);
        }
        h
    }

    /// Backward required-time sweep over the shard — the local
    /// equivalent of [`crate::analysis::propagate_required`].
    /// Unconstrained nodes keep [`Time::INF`].
    pub fn sweep_required(&self, required: &mut [RiseFall<Time>]) {
        debug_assert_eq!(required.len(), self.nets.len());
        for v in (0..self.nets.len()).rev() {
            let req_out = required[v];
            if req_out.rise >= Time::INF && req_out.fall >= Time::INF {
                continue;
            }
            let arcs =
                &self.fanin_arcs[self.fanin_heads[v] as usize..self.fanin_heads[v + 1] as usize];
            for &ai in arcs {
                let arc = &self.arcs[ai as usize];
                let req_in = required_backward(arc.sense, req_out, arc.delay_max);
                let slot = &mut required[arc.from as usize];
                *slot = (*slot).min(req_in);
            }
        }
    }
}

/// The whole graph partitioned into per-cluster shards.
#[derive(Clone, Debug)]
pub struct ShardedGraph {
    shards: Vec<ClusterShard>,
    /// Global net raw index → local index within its cluster.
    local_of: Vec<u32>,
}

impl ShardedGraph {
    /// Partitions `graph` into one shard per cluster. Every net appears
    /// in exactly one shard; every arc stays within its shard.
    pub fn new(graph: &TimingGraph) -> ShardedGraph {
        let cluster_count = graph.clusters().count();
        // Count per-cluster arcs up front so each shard's vectors are
        // sized exactly once — at a million cells the repeated doubling
        // of push-grown shards dominates the build otherwise.
        let mut arc_counts = vec![0usize; cluster_count];
        for arc in graph.arcs() {
            arc_counts[graph.cluster_of(arc.from).as_raw() as usize] += 1;
        }
        let mut shards: Vec<ClusterShard> = (0..cluster_count as u32)
            .map(|c| ClusterShard {
                cluster: ClusterId(c),
                nets: Vec::with_capacity(graph.cluster(ClusterId(c)).nets.len()),
                arcs: Vec::with_capacity(arc_counts[c as usize]),
                fanout_heads: Vec::new(),
                fanout_arcs: Vec::new(),
                fanin_heads: Vec::new(),
                fanin_arcs: Vec::new(),
            })
            .collect();
        // Local indices follow the global topological order, so each
        // shard's net list is a topological order of its subgraph.
        let mut local_of = vec![0u32; graph.node_count()];
        for &net in graph.topo() {
            let c = graph.cluster_of(net).as_raw() as usize;
            local_of[net.as_raw() as usize] = shards[c].nets.len() as u32;
            shards[c].nets.push(net);
        }
        for arc in graph.arcs() {
            let c = graph.cluster_of(arc.from).as_raw() as usize;
            debug_assert_eq!(c, graph.cluster_of(arc.to).as_raw() as usize);
            shards[c].arcs.push(LocalArc {
                from: local_of[arc.from.as_raw() as usize],
                to: local_of[arc.to.as_raw() as usize],
                sense: arc.sense,
                delay_max: arc.delay.max,
            });
        }
        for shard in &mut shards {
            let n = shard.nets.len();
            let mut out_deg = vec![0u32; n + 1];
            let mut in_deg = vec![0u32; n + 1];
            for arc in &shard.arcs {
                out_deg[arc.from as usize + 1] += 1;
                in_deg[arc.to as usize + 1] += 1;
            }
            for i in 0..n {
                out_deg[i + 1] += out_deg[i];
                in_deg[i + 1] += in_deg[i];
            }
            let mut out_next = out_deg.clone();
            let mut in_next = in_deg.clone();
            shard.fanout_arcs = vec![0u32; shard.arcs.len()];
            shard.fanin_arcs = vec![0u32; shard.arcs.len()];
            for (ai, arc) in shard.arcs.iter().enumerate() {
                let o = &mut out_next[arc.from as usize];
                shard.fanout_arcs[*o as usize] = ai as u32;
                *o += 1;
                let i = &mut in_next[arc.to as usize];
                shard.fanin_arcs[*i as usize] = ai as u32;
                *i += 1;
            }
            shard.fanout_heads = out_deg;
            shard.fanin_heads = in_deg;
        }
        ShardedGraph { shards, local_of }
    }

    /// The number of shards (= clusters).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard of a cluster.
    pub fn shard(&self, cluster: ClusterId) -> &ClusterShard {
        &self.shards[cluster.as_raw() as usize]
    }

    /// The local index of `net` within its cluster's shard.
    pub fn local_of(&self, net: NetId) -> u32 {
        self.local_of[net.as_raw() as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{propagate_ready_max, propagate_required, table};
    use hb_cells::{sc89, Binding};
    use hb_netlist::Design;

    /// Two independent INV chains: two clusters, and the sharded sweeps
    /// must agree bit-for-bit with the dense whole-graph sweeps.
    #[test]
    fn sharded_sweeps_match_dense() {
        let lib = sc89();
        let mut d = Design::new("s");
        lib.declare_into(&mut d).unwrap();
        let m = d.add_module("top").unwrap();
        let inv = d.leaf_by_name("INV_X1").unwrap();
        let nand = d.leaf_by_name("NAND2_X1").unwrap();
        let mut heads = Vec::new();
        let mut tails = Vec::new();
        for c in 0..2 {
            let a = d.add_net(m, format!("a{c}")).unwrap();
            let b = d.add_net(m, format!("b{c}")).unwrap();
            let y = d.add_net(m, format!("y{c}")).unwrap();
            d.add_port(m, format!("a{c}"), hb_netlist::PinDir::Input, a)
                .unwrap();
            d.add_port(m, format!("y{c}"), hb_netlist::PinDir::Output, y)
                .unwrap();
            let u1 = d.add_leaf_instance(m, format!("u{c}_1"), inv).unwrap();
            let u2 = d.add_leaf_instance(m, format!("u{c}_2"), nand).unwrap();
            d.connect(m, u1, "A", a).unwrap();
            d.connect(m, u1, "Y", b).unwrap();
            d.connect(m, u2, "A", a).unwrap();
            d.connect(m, u2, "B", b).unwrap();
            d.connect(m, u2, "Y", y).unwrap();
            heads.push(a);
            tails.push(y);
        }
        d.set_top(m).unwrap();
        let binding = Binding::new(&d, &lib);
        let graph = TimingGraph::build(&d, m, &binding, &lib).unwrap();
        let sharded = ShardedGraph::new(&graph);

        // Dense reference.
        let mut ready = table(&graph, Time::NEG_INF);
        for (i, &a) in heads.iter().enumerate() {
            ready[a.as_raw() as usize] = RiseFall::splat(Time::from_ns(i as i64));
        }
        propagate_ready_max(&graph, &mut ready);
        let mut required = table(&graph, Time::INF);
        for &y in &tails {
            required[y.as_raw() as usize] = RiseFall::splat(Time::from_ns(10));
        }
        propagate_required(&graph, &mut required);

        // Sharded: seed the same values at local indices, sweep each
        // shard, scatter back, compare.
        let mut ready2 = table(&graph, Time::NEG_INF);
        let mut required2 = table(&graph, Time::INF);
        for c in 0..sharded.shard_count() {
            let shard = &sharded.shards[c];
            let mut r = shard.table(Time::NEG_INF);
            let mut q = shard.table(Time::INF);
            for (i, &a) in heads.iter().enumerate() {
                if graph.cluster_of(a) == shard.cluster() {
                    r[sharded.local_of(a) as usize] = RiseFall::splat(Time::from_ns(i as i64));
                }
            }
            for &y in &tails {
                if graph.cluster_of(y) == shard.cluster() {
                    q[sharded.local_of(y) as usize] = RiseFall::splat(Time::from_ns(10));
                }
            }
            shard.sweep_ready_max(&mut r);
            shard.sweep_required(&mut q);
            for (local, &net) in shard.nets().iter().enumerate() {
                ready2[net.as_raw() as usize] = r[local];
                required2[net.as_raw() as usize] = q[local];
            }
        }
        assert_eq!(ready, ready2);
        assert_eq!(required, required2);
    }

    /// Every net lands in exactly one shard, at a consistent local
    /// index, and arcs never cross shards.
    #[test]
    fn partition_is_total_and_consistent() {
        let lib = sc89();
        let mut d = Design::new("p");
        lib.declare_into(&mut d).unwrap();
        let m = d.add_module("top").unwrap();
        let a = d.add_net(m, "a").unwrap();
        let y = d.add_net(m, "y").unwrap();
        let lone = d.add_net(m, "lone").unwrap();
        d.add_port(m, "a", hb_netlist::PinDir::Input, a).unwrap();
        d.add_port(m, "y", hb_netlist::PinDir::Output, y).unwrap();
        d.add_port(m, "lone", hb_netlist::PinDir::Input, lone)
            .unwrap();
        let inv = d.leaf_by_name("INV_X1").unwrap();
        let u = d.add_leaf_instance(m, "u", inv).unwrap();
        d.connect(m, u, "A", a).unwrap();
        d.connect(m, u, "Y", y).unwrap();
        d.set_top(m).unwrap();
        let binding = Binding::new(&d, &lib);
        let graph = TimingGraph::build(&d, m, &binding, &lib).unwrap();
        let sharded = ShardedGraph::new(&graph);

        let total: usize = (0..sharded.shard_count())
            .map(|c| sharded.shards[c].len())
            .sum();
        assert_eq!(total, graph.node_count());
        for (c, cluster) in graph.clusters() {
            let shard = sharded.shard(c);
            assert_eq!(shard.len(), cluster.nets.len());
            for &net in &cluster.nets {
                assert_eq!(shard.nets()[sharded.local_of(net) as usize], net);
            }
        }
        let arc_total: usize = (0..sharded.shard_count())
            .map(|c| sharded.shards[c].arc_count())
            .sum();
        assert_eq!(arc_total, graph.arc_count());
    }
}
