//! A Figure-1 style multiphase scenario: a DSP-ish datapath whose
//! shared combinational resources are time-multiplexed by four clock
//! phases, exactly the situation the paper's introduction motivates
//! ("the logic gate is time multiplexed within each overall clock
//! period").
//!
//! Shows the per-cluster analysis-pass planning (minimum number of
//! settling times) and the slow-path report when one phase's budget is
//! squeezed.
//!
//! ```sh
//! cargo run -p hb-bench --example multiphase_dsp
//! ```

use hb_cells::sc89;
use hb_units::{Time, Transition};
use hb_workloads::figure1;
use hummingbird::{Analyzer, EdgeSpec, Spec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = sc89();
    let w = figure1(&lib);
    println!(
        "multiphase datapath: {} cells, {} nets, 4 clock phases",
        w.stats().cells,
        w.stats().nets
    );

    let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())?;
    let stats = analyzer.prep_stats();
    println!(
        "pre-processing: {} clusters, {} ordering requirements, max {} settling times per node",
        stats.active_clusters, stats.requirements, stats.max_cluster_passes
    );
    for (i, start) in analyzer.pass_starts().iter().enumerate() {
        println!("  analysis window {i} opens at {start}");
    }

    let report = analyzer.analyze();
    println!("\nwith relaxed arrivals:\n{report}");

    // Squeeze phase 3's data arrival until its capture fails: the slow
    // path lands on the phase-4 latch while the phase-2 capture of the
    // same gate stays clean — the per-pass analysis keeps them apart.
    let squeezed: Spec = w.spec.clone().input_arrival(
        "c",
        EdgeSpec::new("p3", Transition::Rise),
        Time::from_ns(33),
    );
    let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, squeezed)?;
    let report = analyzer.analyze();
    println!("with `c` arriving 33 ns after the p3 leading edge:\n{report}");
    for path in report.slow_paths() {
        println!("slow path into {} (slack {}):", path.endpoint, path.slack);
        for step in &path.steps {
            match &step.through {
                Some(inst) => println!("    -> {} via {} at {}", step.net, inst, step.time),
                None => println!("    from {} at {}", step.net, step.time),
            }
        }
    }
    assert!(!report.ok());
    Ok(())
}
