//! Text formats for hummingbird designs.
//!
//! The original Hummingbird read designs from the Berkeley OCT database.
//! This crate provides the file-based equivalents, both hand-rolled (no
//! external parser dependencies exist offline, and the formats are
//! line-oriented):
//!
//! * the native **`.hum`** structural format ([`parse_hum`],
//!   [`write_hum`]) — modules, ports, instances with named pin
//!   connections, hierarchy and clock waveforms;
//! * a **mapped-BLIF subset** ([`parse_blif`], [`write_blif`]) — the
//!   `.model/.inputs/.outputs/.gate/.mlatch/.subckt/.end` directives
//!   produced by SIS-era technology mappers, which is how designs moved
//!   between Berkeley tools in practice;
//! * the **daemon wire protocol** ([`proto`]) — newline-delimited
//!   frames with length-prefixed payloads, spoken between
//!   `hummingbird serve` and its clients.
//!
//! Both parsers resolve cell names against an [`hb_cells::Library`]
//! whose interfaces are declared into the produced design.
//!
//! # Examples
//!
//! ```
//! use hb_cells::sc89;
//!
//! let text = "\
//! design demo
//! module top
//!   port in a ck
//!   port out y
//!   inst u1 INV_X1 A=a Y=w
//!   inst ff DFF D=w CK=ck Q=y
//! end
//! top top
//! clock ck period 20ns rise 0ns fall 10ns
//! ";
//! let lib = sc89();
//! let file = hb_io::parse_hum(text, &lib)?;
//! assert_eq!(file.design.stats(file.design.top().unwrap()).cells, 2);
//! assert_eq!(file.clocks.len(), 1);
//!
//! // Round-trip.
//! let emitted = hb_io::write_hum(&file.design, &file.clocks);
//! let again = hb_io::parse_hum(&emitted, &lib)?;
//! assert_eq!(again.design.stats(again.design.top().unwrap()).cells, 2);
//! # Ok::<(), hb_io::ParseError>(())
//! ```

mod blif;
mod error;
mod hum;
mod lib_format;
pub mod proto;

pub use blif::{parse_blif, write_blif};
pub use error::ParseError;
pub use hum::{parse_hum, write_hum, write_hum_with_timing, EdgeRef, HumFile, TimingDirective};
pub use lib_format::{parse_lib, write_lib};
pub use proto::{write_frame, Frame, FrameDecoder, FrameReader, ProtoError};
