//! Three-node failover chaos: seeded partition / kill / heal schedules
//! over a quorum cluster (one primary, two standbys, full peer wiring),
//! run against **both** transports.
//!
//! The invariants, per ISSUE:
//!
//! 1. losing the primary — killed outright or cut off by an injected
//!    `repl.link.drop` partition — promotes **exactly one** standby,
//!    by majority-acked ranked election;
//! 2. a partitioned ex-primary is a *zombie*: the healed cluster
//!    rejects its stale term, and the moment it hears the new term it
//!    demotes, fences its own writes, and resyncs;
//! 3. after the schedule settles, every surviving node converges to
//!    the same design fingerprint — the new primary's.
//!
//! Schedules are seeded like the rest of the chaos suite: three fixed
//! seeds plus an optional fresh `HB_CHAOS_SEED` from check.sh, the
//! seed printed on failure. Seed parity picks kill vs partition, so
//! the fixed matrix exercises both on both transports.

use std::net::SocketAddr;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use hb_cells::sc89;
use hb_fault::{Fault, FaultPlan};
use hb_io::Frame;
use hb_server::{Client, Server, ServerOptions};

static CHAOS: Mutex<()> = Mutex::new(());

fn serialised() -> MutexGuard<'static, ()> {
    hb_obs::arm();
    CHAOS.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The seed matrix shared with the chaos suite: fixed seeds for
/// reproducibility, plus check.sh's fresh one.
fn seeds() -> Vec<u64> {
    let mut seeds = vec![0xDAC89, 1, 2];
    if let Some(seed) = std::env::var("HB_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        seeds.push(seed);
    }
    seeds
}

fn design_text(name: &str) -> String {
    format!(
        "design {name}\n\
         module top\n\
         \x20 port in din clk\n\
         \x20 port out dout\n\
         \x20 inst g0 BUF_X1 A=din Y=n0\n\
         \x20 inst g1 INV_X1 A=n0 Y=n1\n\
         \x20 inst cap DFF D=n1 CK=clk Q=dout\n\
         end\n\
         top top\n\
         clock clk period 10ns rise 0ns fall 5ns\n\
         clockport clk clk\n\
         arrive din clk rise 1ns\n"
    )
}

fn scale_eco(net: &str, percent: u64) -> Frame {
    Frame::new("eco")
        .arg("op", "scale-net")
        .arg("net", net)
        .arg("percent", percent)
}

fn request(addr: SocketAddr, req: &Frame) -> Frame {
    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    client.request(req).unwrap()
}

fn design_fp(addr: SocketAddr) -> Option<String> {
    request(addr, &Frame::new("designs"))
        .payload
        .as_deref()
        .unwrap_or("")
        .lines()
        .find_map(|l| {
            let mut parts = l.split_whitespace();
            (parts.next() == Some("default")).then(|| {
                parts
                    .find_map(|p| p.strip_prefix("fp="))
                    .unwrap()
                    .to_owned()
            })
        })
}

fn role_of(addr: SocketAddr) -> String {
    request(addr, &Frame::new("stats"))
        .get("role")
        .expect("stats carries role=")
        .to_owned()
}

fn await_fp(addr: SocketAddr, want: &str, what: &str, seed: u64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while design_fp(addr).as_deref() != Some(want) {
        assert!(
            Instant::now() < deadline,
            "[seed {seed:#x}] {what}: node never converged to fp={want}"
        );
        thread::sleep(Duration::from_millis(25));
    }
}

fn await_role(addr: SocketAddr, want: &str, what: &str, seed: u64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while role_of(addr) != want {
        assert!(
            Instant::now() < deadline,
            "[seed {seed:#x}] {what}: node never reported role={want}"
        );
        thread::sleep(Duration::from_millis(25));
    }
}

struct Node {
    addr: SocketAddr,
    handle: thread::JoinHandle<std::io::Result<()>>,
}

/// Binds and wires a full three-node cluster — A primary, B and C
/// standbys of A, every node carrying the other two as peers — then
/// serves each on `reactor`'s transport.
fn start_cluster(faults_on_primary: FaultPlan, reactor: bool) -> (Node, Node, Node) {
    let standby = |primary: SocketAddr| ServerOptions {
        standby_of: Some(primary.to_string()),
        sync_interval: Duration::from_millis(25),
        promote_after: 3,
        ..ServerOptions::default()
    };
    let mut a = Server::bind(
        "127.0.0.1:0",
        sc89(),
        ServerOptions {
            faults: faults_on_primary,
            sync_interval: Duration::from_millis(25),
            ..ServerOptions::default()
        },
    )
    .unwrap();
    let a_addr = a.local_addr().unwrap();
    let mut b = Server::bind("127.0.0.1:0", sc89(), standby(a_addr)).unwrap();
    let b_addr = b.local_addr().unwrap();
    let mut c = Server::bind("127.0.0.1:0", sc89(), standby(a_addr)).unwrap();
    let c_addr = c.local_addr().unwrap();
    a.options_mut().unwrap().peers = vec![b_addr.to_string(), c_addr.to_string()];
    b.options_mut().unwrap().peers = vec![a_addr.to_string(), c_addr.to_string()];
    c.options_mut().unwrap().peers = vec![a_addr.to_string(), b_addr.to_string()];
    let spawn = |server: Server| -> thread::JoinHandle<std::io::Result<()>> {
        thread::spawn(move || {
            if reactor {
                server.run_reactor()
            } else {
                server.run()
            }
        })
    };
    (
        Node {
            addr: a_addr,
            handle: spawn(a),
        },
        Node {
            addr: b_addr,
            handle: spawn(b),
        },
        Node {
            addr: c_addr,
            handle: spawn(c),
        },
    )
}

/// Polls both standbys until exactly one promotes; panics loudly on a
/// split brain. Returns `(winner, loser)`.
fn await_single_promotion(b: SocketAddr, c: SocketAddr, seed: u64) -> (SocketAddr, SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (rb, rc) = (role_of(b), role_of(c));
        match (rb.as_str(), rc.as_str()) {
            ("primary", "primary") => {
                panic!("[seed {seed:#x}] split brain: both standbys promoted")
            }
            ("primary", _) => return (b, c),
            (_, "primary") => return (c, b),
            _ => {
                assert!(
                    Instant::now() < deadline,
                    "[seed {seed:#x}] no standby promoted"
                );
                thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// One seeded schedule: build the cluster, run a write workload, fail
/// the primary (kill or partition by seed parity), assert single
/// promotion, continue the flow on the winner, heal, and assert
/// convergence plus zombie fencing.
fn run_schedule(seed: u64, reactor: bool) {
    let plan = FaultPlan::seeded(seed);
    let (a, b, c) = start_cluster(plan.clone(), reactor);
    let tag = if reactor { "reactor" } else { "threaded" };

    // Seeded workload on the primary.
    assert_eq!(
        request(a.addr, &Frame::new("load").with_payload(design_text("dut"))).verb,
        "ok"
    );
    assert_eq!(request(a.addr, &Frame::new("analyze")).verb, "ok");
    let pct = 90 + seed % 40;
    let reply = request(a.addr, &scale_eco("n0", pct));
    assert_eq!(reply.verb, "ok", "[seed {seed:#x}] {:?}", reply.payload);
    let want = design_fp(a.addr).unwrap();
    await_fp(b.addr, &want, "pre-fault catch-up (b)", seed);
    await_fp(c.addr, &want, "pre-fault catch-up (c)", seed);

    // The fault: even seeds partition the primary off its cluster
    // (client traffic still flows — the zombie case); odd seeds kill
    // it outright, mid-ECO-flow.
    let partition = seed.is_multiple_of(2);
    if partition {
        plan.arm(hb_fault::REPL_LINK_DROP, Fault::always());
        // The zombie keeps accepting writes it can no longer
        // replicate; they must die with its term.
        let reply = request(a.addr, &scale_eco("n1", 70));
        assert_eq!(reply.verb, "ok", "[seed {seed:#x}] zombie write");
    } else {
        request(a.addr, &Frame::new("shutdown"));
    }

    // Exactly one standby wins the election; the flow continues there.
    let (winner, loser) = await_single_promotion(b.addr, c.addr, seed);
    let reply = request(winner, &scale_eco("n1", 120));
    assert_eq!(
        reply.verb, "ok",
        "[seed {seed:#x}] [{tag}] post-failover write: {:?}",
        reply.payload
    );
    let stats = request(winner, &Frame::new("stats"));
    assert!(
        stats.get("term").unwrap().parse::<u64>().unwrap() >= 2,
        "[seed {seed:#x}] promotion must bump the term"
    );
    let want = design_fp(winner).unwrap();
    await_fp(loser, &want, "loser chains behind winner", seed);
    let reply = request(loser, &scale_eco("n1", 50));
    assert_eq!(
        reply.get("code"),
        Some("fenced"),
        "[seed {seed:#x}] the losing standby must stay fenced"
    );

    if partition {
        // Heal. The zombie gossips into the new term, demotes, drops
        // its divergent write, and resyncs behind the winner — its
        // fingerprint converges to the cluster's, and its writes are
        // now fenced with the new term.
        plan.disarm(hb_fault::REPL_LINK_DROP);
        await_role(a.addr, "standby", "zombie demotes on heal", seed);
        let reply = request(a.addr, &scale_eco("n0", 75));
        assert_eq!(
            reply.get("code"),
            Some("fenced"),
            "[seed {seed:#x}] healed zombie must reject writes: {:?}",
            reply.payload
        );
        assert!(
            reply.get("term").unwrap().parse::<u64>().unwrap() >= 2,
            "[seed {seed:#x}] fence must carry the new term"
        );
        await_fp(a.addr, &want, "zombie resyncs behind winner", seed);
    }

    // Teardown: winner first, then the rest (the survivors cannot
    // reach a majority and must stay standbys — no further probing).
    request(winner, &Frame::new("shutdown"));
    request(loser, &Frame::new("shutdown"));
    if partition {
        request(a.addr, &Frame::new("shutdown"));
    }
    for node in [a, b, c] {
        node.handle.join().unwrap().unwrap();
    }
}

#[test]
fn seeded_failover_schedules_threaded() {
    let _guard = serialised();
    for seed in seeds() {
        run_schedule(seed, false);
    }
}

#[test]
fn seeded_failover_schedules_reactor() {
    let _guard = serialised();
    for seed in seeds() {
        run_schedule(seed, true);
    }
}
