//! Observability must never perturb analysis: arming the metrics layer
//! changes no report byte, at any thread count. Counters always tally
//! and spans only read the clock, so the only way this can fail is a
//! metrics call leaking into a timing decision — exactly the bug class
//! this test exists to catch.

use hb_cells::sc89;
use hb_workloads::{fsm12, random_pipeline, PipelineParams, Workload};
use hummingbird::{AnalysisOptions, Analyzer, EngineKind};

fn report_text(w: &Workload, lib: &hb_cells::Library, threads: usize) -> String {
    let options = AnalysisOptions {
        engine: EngineKind::Sharded,
        threads,
        ..AnalysisOptions::default()
    };
    Analyzer::with_options(&w.design, w.module, lib, &w.clocks, w.spec.clone(), options)
        .expect("conforming workload")
        .generate_constraints()
        .to_string()
}

/// The arm flag is process-wide, so the whole armed/disarmed comparison
/// lives in one test fn — parallel test fns toggling it would race.
#[test]
fn armed_metrics_leave_reports_bit_identical() {
    let lib = sc89();
    let workloads = vec![
        fsm12(&lib, true),
        random_pipeline(
            &lib,
            PipelineParams {
                stages: 4,
                width: 8,
                gates_per_stage: 60,
                transparent: true,
                period_ns: 14,
                seed: 21,
                imbalance_pct: 30,
            },
        ),
    ];
    for w in &workloads {
        for threads in [1usize, 8] {
            hb_obs::disarm();
            let disarmed = report_text(w, &lib, threads);
            hb_obs::arm();
            let armed = report_text(w, &lib, threads);
            hb_obs::disarm();
            assert_eq!(
                disarmed, armed,
                "{}: report differs when metrics are armed ({threads} threads)",
                w.name
            );
        }
    }
}
