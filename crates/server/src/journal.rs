//! The session write-ahead journal and its replay recovery.
//!
//! Every request that actually changes resident state — `load`,
//! `analyze`/`constraints` (they can change analysis options), `eco` —
//! is recorded *after* it is handled, together with the reply verb it
//! earned and a fingerprint of the state it produced. When a later
//! request panics and leaves the session half-mutated (or a panic
//! escapes far enough to poison the lock), the transport rebuilds the
//! session by replaying the journal into a fresh [`Session`] and
//! verifying the rebuilt fingerprint against the last recorded one.
//! The panicking request itself was never journaled, so recovery rolls
//! the session back to the last state any client was told about.
//!
//! Replay is **warm**: the content-addressed
//! [`SlackCache`](hummingbird::SlackCache) salvaged from the broken
//! session is transplanted into the rebuilt one. Cache entries are
//! keyed by shard content fingerprint plus seed signature and inserted
//! only once fully computed, so entries written before a panic are
//! either complete and correct or absent — a replayed analysis reuses
//! every clean cluster and re-sweeps only what the interrupted request
//! dirtied. `fault_bench` measures this: replay comes out at least as
//! cheap as a cold `load` + `analyze`.
//!
//! The journal is bounded: past [`Journal::MAX_ENTRIES`] it compacts
//! itself into a synthetic `load` of the current design text (the
//! `dump` round-trip the parity suite already guarantees) plus one
//! options-bearing re-analysis, so replay cost cannot grow without
//! limit under an ECO-heavy client.

use std::panic::{catch_unwind, AssertUnwindSafe};

use hb_cells::Library;
use hb_io::Frame;
use hummingbird::SlackCache;

use crate::session::Session;

/// Verbs whose handling may change state a journal replay must
/// reproduce.
pub(crate) fn is_mutating(verb: &str) -> bool {
    matches!(verb, "load" | "analyze" | "constraints" | "eco")
}

/// One journaled request plus the reply verb it earned. Handling is
/// deterministic, so replay must reproduce the verb — including
/// requests that mutated state *and* failed (an `eco` whose
/// re-analysis errored still moved the design).
pub(crate) struct Entry {
    pub(crate) req: Frame,
    pub(crate) expect: String,
}

/// A write-ahead record of every state-changing request the session
/// handled, replayable into a fresh [`Session`].
#[derive(Default)]
pub struct Journal {
    entries: Vec<Entry>,
    /// [`Session::fingerprint`] after the last recorded entry.
    fingerprint: Option<u64>,
    /// Bumped whenever history is rewritten rather than appended to
    /// (a fresh `load` clears it, compaction collapses it). A replica
    /// streaming entries by index uses this to detect that its `since`
    /// cursor no longer means what it did and resync from zero.
    epoch: u64,
}

impl Journal {
    /// Entry-count bound past which [`Journal::record`] compacts the
    /// journal into a snapshot `load` plus one re-analysis.
    pub const MAX_ENTRIES: usize = 1024;

    /// An empty journal (nothing loaded yet).
    pub fn new() -> Journal {
        Journal::default()
    }

    /// The number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The history epoch: bumped whenever recorded entries are
    /// rewritten (clear-on-load, compaction) instead of appended.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// [`Session::fingerprint`] after the last recorded entry, if any.
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }

    /// The replication cursor in one read: `(epoch, len, fingerprint)`.
    /// This is what `repl-state` advertises per design and what a
    /// standby's level check compares against its own journal.
    pub fn cursor(&self) -> (u64, usize, Option<u64>) {
        (self.epoch, self.entries.len(), self.fingerprint)
    }

    /// The recorded entries — the replication stream's source.
    pub(crate) fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Starts a fresh history at `epoch` (a replica resyncing from its
    /// primary after the primary rewrote its own history).
    pub(crate) fn sync_reset(&mut self, epoch: u64) {
        self.entries.clear();
        self.fingerprint = None;
        self.epoch = epoch;
    }

    /// Appends one replicated entry verbatim. Replicas never compact on
    /// their own — the primary compacts, bumps its epoch, and the
    /// replica resyncs — so history stays an exact mirror.
    pub(crate) fn sync_push(&mut self, req: Frame, expect: String) {
        self.entries.push(Entry { req, expect });
    }

    /// Installs the fingerprint reported by the primary for the state
    /// after the last pushed entry.
    pub(crate) fn set_fingerprint(&mut self, fingerprint: Option<u64>) {
        self.fingerprint = fingerprint;
    }

    /// Records a handled request and the fingerprint of the state it
    /// produced. A successful `load` starts design history over;
    /// anything else appends. `session` is the session that just
    /// handled `req` (used for fingerprinting and for compaction
    /// snapshots).
    pub fn record(&mut self, req: &Frame, reply: &Frame, session: &Session) {
        if req.verb == "load" && reply.verb == "ok" {
            self.entries.clear();
            self.epoch += 1;
        }
        self.entries.push(Entry {
            req: req.clone(),
            expect: reply.verb.clone(),
        });
        self.fingerprint = Some(session.fingerprint());
        if self.entries.len() > Journal::MAX_ENTRIES {
            self.compact(session);
        }
    }

    /// Collapses the history into a snapshot: one synthetic `load` of
    /// the session's current design text plus one options-bearing
    /// re-analysis. Sound because the `.hum` dump round-trip is
    /// bit-exact (asserted by the parity suite and the check.sh smoke
    /// test).
    fn compact(&mut self, session: &Session) {
        let Some(snapshot) = session.snapshot_frames() else {
            return; // nothing loaded; keep the raw history
        };
        self.entries = snapshot
            .into_iter()
            .map(|req| Entry {
                req,
                expect: "ok".to_owned(),
            })
            .collect();
        self.fingerprint = Some(session.fingerprint());
        self.epoch += 1;
    }

    /// Rebuilds a session by replaying every recorded entry into a
    /// fresh one, transplanting `cache` (salvaged from the broken
    /// session) right after the `load` so the re-analyses run warm,
    /// and verifying the rebuilt fingerprint.
    ///
    /// # Errors
    ///
    /// Returns a description of the first entry that replayed to a
    /// different verb, panicked, or left a mismatched fingerprint.
    /// The caller should fall back to an empty session.
    pub fn replay(&self, library: Library, cache: Option<SlackCache>) -> Result<Session, String> {
        let mut session = Session::new(library);
        let mut cache = cache;
        for (i, entry) in self.entries.iter().enumerate() {
            let req = &entry.req;
            // `handle_replay` skips request counting: a recovery must
            // not inflate the request history it is restoring.
            let reply = catch_unwind(AssertUnwindSafe(|| session.handle_replay(req)))
                .map_err(|_| format!("journal entry {i} (`{}`) panicked on replay", req.verb))?;
            if reply.verb != entry.expect {
                return Err(format!(
                    "journal entry {i} (`{}`) replayed to `{}` (recorded `{}`): {}",
                    req.verb,
                    reply.verb,
                    entry.expect,
                    reply.payload.as_deref().unwrap_or("no detail")
                ));
            }
            if req.verb == "load" && reply.verb == "ok" {
                if let Some(cache) = cache.take() {
                    session.install_cache(cache);
                }
            }
        }
        if let Some(expected) = self.fingerprint {
            let got = session.fingerprint();
            if got != expected {
                return Err(format!(
                    "replayed fingerprint {got:#018x} != recorded {expected:#018x}"
                ));
            }
        }
        Ok(session)
    }
}

/// Answers `req` on `session` with panic isolation and journal-backed
/// recovery — the write-path core shared by the TCP transport and the
/// stdio loop.
///
/// Requests that changed state (successfully or not) are journaled.
/// On a panic the half-mutated session is rebuilt from the journal
/// (warm, salvaging its cache) and the client gets a structured
/// `error code=internal` describing what happened; the rebuilt state
/// is the last one any client was told about.
pub(crate) fn handle_recovering(
    session: &mut Session,
    journal: &mut Journal,
    library: &Library,
    req: &Frame,
) -> Frame {
    let mutating = is_mutating(&req.verb);
    let before = if mutating {
        Some(session.fingerprint())
    } else {
        None
    };
    let reply = match catch_unwind(AssertUnwindSafe(|| session.handle(req))) {
        Ok(reply) => reply,
        Err(panic) => {
            let what = panic_message(&panic);
            let recovery = recover(session, journal, library);
            let reply = Frame::new("error").arg("code", "internal");
            return match recovery {
                Ok(replayed) => reply
                    .arg("recovered", 1)
                    .arg("replayed", replayed)
                    .with_payload(format!(
                        "request `{}` panicked ({what}); session rebuilt from journal",
                        req.verb
                    )),
                Err(e) => reply.arg("recovered", 0).with_payload(format!(
                    "request `{}` panicked ({what}); journal replay failed ({e}); \
                     session reset — reload the design",
                    req.verb
                )),
            };
        }
    };
    if mutating && (reply.verb == "ok" || before != Some(session.fingerprint())) {
        journal.record(req, &reply, session);
    }
    reply
}

/// Rebuilds `session` in place from `journal`, salvaging its cache so
/// the replay runs warm. On replay failure the session is reset to
/// empty (library and fault plan intact) and the cause is returned.
pub(crate) fn recover(
    session: &mut Session,
    journal: &Journal,
    library: &Library,
) -> Result<usize, String> {
    let cache = session.take_cache();
    let faults = session.faults().clone();
    let metrics = session.metrics();
    metrics.recoveries.inc();
    let (rebuilt, outcome) = match journal.replay(library.clone(), cache) {
        Ok(rebuilt) => (rebuilt, Ok(journal.len())),
        Err(e) => (Session::new(library.clone()), Err(e)),
    };
    *session = rebuilt;
    session.set_faults(faults);
    // Counter history survives the rebuild: the transport's handle and
    // the session's must stay the same atomics.
    session.set_metrics(metrics);
    outcome
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
