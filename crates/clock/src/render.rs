//! ASCII waveform rendering.
//!
//! The original Hummingbird's interactive mode let users see the effect
//! of clock shapes on timing; a textual waveform display is the terminal
//! equivalent. Each clock renders as one line of `▔` (high) and `▁`
//! (low) samples across one overall period, with a shared time ruler.

use std::fmt::Write as _;

use hb_units::Time;

use crate::clock::ClockSet;

/// Renders every clock of `set` over one overall period, `columns`
/// samples wide.
///
/// # Panics
///
/// Panics if the set is empty or `columns` is zero.
///
/// # Examples
///
/// ```
/// use hb_clock::ClockSet;
/// use hb_units::Time;
///
/// let mut set = ClockSet::new();
/// set.add_clock("ck", Time::from_ns(10), Time::ZERO, Time::from_ns(5)).unwrap();
/// let art = hb_clock::render_waveforms(&set, 20);
/// assert!(art.contains("ck"));
/// assert!(art.contains('▔'));
/// assert!(art.contains('▁'));
/// ```
pub fn render_waveforms(set: &ClockSet, columns: usize) -> String {
    assert!(columns > 0, "need at least one column");
    let overall = set.overall_period();
    let mut out = String::new();
    let name_width = set
        .clocks()
        .map(|(_, c)| c.name().len())
        .max()
        .unwrap_or(4)
        .max(4);

    for (_, clock) in set.clocks() {
        let _ = write!(out, "{:>name_width$} ", clock.name());
        for col in 0..columns {
            let t = overall * col as i64 / columns as i64;
            let phase = (t - clock.rise()).rem_euclid(clock.period());
            let high = phase < clock.high_width();
            out.push(if high { '▔' } else { '▁' });
        }
        let _ = writeln!(
            out,
            "  rise {} fall {} period {}",
            clock.rise(),
            clock.fall(),
            clock.period()
        );
    }

    // Time ruler: tick marks every quarter of the overall period.
    let _ = write!(out, "{:>name_width$} ", "");
    for col in 0..columns {
        out.push(if col % (columns / 4).max(1) == 0 {
            '|'
        } else {
            ' '
        });
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:>name_width$} ", "");
    for q in 0..4 {
        let t = overall * q / 4;
        let label = format!("{t}");
        let width = (columns / 4).max(1);
        let _ = write!(out, "{label:<width$}");
    }
    let _ = writeln!(out, "  (overall {overall})");
    out
}

/// Renders a marker line aligned with [`render_waveforms`] output,
/// placing `^` at each of `times` (modulo the overall period). Useful
/// for pointing at break-open window starts.
pub fn render_markers(set: &ClockSet, columns: usize, times: &[Time], label: &str) -> String {
    assert!(columns > 0, "need at least one column");
    let overall = set.overall_period();
    let name_width = set
        .clocks()
        .map(|(_, c)| c.name().len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut cells = vec![' '; columns];
    for &t in times {
        let pos = (t.rem_euclid(overall) * columns as i64 / overall) as usize;
        cells[pos.min(columns - 1)] = '^';
    }
    let mut out = String::new();
    let _ = write!(out, "{:>name_width$} ", "");
    out.extend(cells);
    let _ = writeln!(out, "  {label}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_phase() -> ClockSet {
        let mut set = ClockSet::new();
        set.add_clock("phi1", Time::from_ns(100), Time::ZERO, Time::from_ns(40))
            .unwrap();
        set.add_clock(
            "phi2",
            Time::from_ns(100),
            Time::from_ns(50),
            Time::from_ns(90),
        )
        .unwrap();
        set
    }

    #[test]
    fn renders_one_line_per_clock_plus_ruler() {
        let set = two_phase();
        let art = render_waveforms(&set, 40);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4, "two clocks + two ruler lines");
        assert!(lines[0].contains("phi1"));
        assert!(lines[1].contains("phi2"));
        assert!(lines[3].contains("overall 100ns"));
    }

    #[test]
    fn high_and_low_samples_match_the_waveform() {
        let set = two_phase();
        let art = render_waveforms(&set, 10);
        // phi1 is high for the first 40% of the period: 4 of 10 samples.
        let phi1_line = art.lines().next().unwrap();
        let high = phi1_line.chars().filter(|&c| c == '▔').count();
        let low = phi1_line.chars().filter(|&c| c == '▁').count();
        assert_eq!(high, 4, "{art}");
        assert_eq!(low, 6, "{art}");
    }

    #[test]
    fn wrapping_pulse_renders_high_at_both_ends() {
        let mut set = ClockSet::new();
        set.add_clock(
            "w",
            Time::from_ns(100),
            Time::from_ns(80),
            Time::from_ns(20),
        )
        .unwrap();
        let art = render_waveforms(&set, 10);
        let line = art.lines().next().unwrap();
        let samples: Vec<char> = line.chars().filter(|c| matches!(c, '▔' | '▁')).collect();
        assert_eq!(samples[0], '▔', "high at t=0 (wrapped)");
        assert_eq!(samples[9], '▔', "high at t=90");
        assert_eq!(samples[5], '▁', "low mid-period");
    }

    #[test]
    fn markers_land_on_their_columns() {
        let set = two_phase();
        let line = render_markers(&set, 10, &[Time::ZERO, Time::from_ns(50)], "breaks");
        let cells: Vec<char> = line.chars().collect();
        assert!(line.ends_with("breaks\n"));
        // name_width = 4, plus one space: marker columns start at 5.
        assert_eq!(cells[5], '^');
        assert_eq!(cells[10], '^');
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_columns_rejected() {
        let set = two_phase();
        let _ = render_waveforms(&set, 0);
    }
}
