//! Byte-counting stream adapters: wrap a transport's read/write halves
//! so wire traffic lands in registry counters without the codec layer
//! knowing anything about metrics.

use std::io::{self, Read, Write};

use crate::metrics::Counter;

/// Counts every byte successfully read from the inner reader.
pub struct CountingReader<R> {
    inner: R,
    bytes: Counter,
}

impl<R: Read> CountingReader<R> {
    /// Wraps `inner`, adding read byte counts onto `bytes`.
    pub fn new(inner: R, bytes: Counter) -> CountingReader<R> {
        CountingReader { inner, bytes }
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes.add(n as u64);
        Ok(n)
    }
}

/// Counts every byte successfully written to the inner writer.
pub struct CountingWriter<W> {
    inner: W,
    bytes: Counter,
}

impl<W: Write> CountingWriter<W> {
    /// Wraps `inner`, adding written byte counts onto `bytes`.
    pub fn new(inner: W, bytes: Counter) -> CountingWriter<W> {
        CountingWriter { inner, bytes }
    }
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes.add(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_are_tallied() {
        let bytes_in = Counter::new();
        let mut r = CountingReader::new(&b"hello world"[..], bytes_in.clone());
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(bytes_in.get(), 11);

        let bytes_out = Counter::new();
        let mut sink = Vec::new();
        let mut w = CountingWriter::new(&mut sink, bytes_out.clone());
        w.write_all(b"reply").unwrap();
        w.flush().unwrap();
        assert_eq!(bytes_out.get(), 5);
        assert_eq!(sink, b"reply");
    }
}
