//! Block-oriented ready/required/slack propagation.
//!
//! This is the paper's Section 7 machinery (equations 1 and 2): within a
//! cluster, ready times are traced forward from the inputs and slacks are
//! traced backward from the outputs in a single topological sweep each —
//! the fast *block method* of Hitchcock, chosen over path enumeration
//! because "speed is an important issue".
//!
//! All functions operate on dense per-net vectors indexed by
//! [`NetId::as_raw`]; the caller seeds the vectors (cluster input
//! assertion times forward, cluster output closure times backward) and
//! sentinel values ([`Time::NEG_INF`] / [`Time::INF`]) mark unreached
//! nodes.

use hb_netlist::NetId;
use hb_units::{RiseFall, Sense, Time};

use crate::graph::TimingGraph;

/// A dense per-net rise/fall time table.
pub type TimeTable = Vec<RiseFall<Time>>;

/// Creates a table of the given sentinel value for `graph`.
pub fn table(graph: &TimingGraph, fill: Time) -> TimeTable {
    vec![RiseFall::splat(fill); graph.node_count()]
}

/// Forward maximum (latest) arrival propagation — paper equation 1:
/// `R_z = max_i (R_i + P_iz)`, rise/fall split with arc unateness.
///
/// Seeds must already be placed in `ready`; unreached nets keep
/// [`Time::NEG_INF`].
pub fn propagate_ready_max(graph: &TimingGraph, ready: &mut TimeTable) {
    for &net in graph.topo() {
        let at = ready[net.as_raw() as usize];
        if at.rise <= Time::NEG_INF && at.fall <= Time::NEG_INF {
            continue;
        }
        for &ai in graph.fanout_arcs(net) {
            let arc = graph.arc(ai);
            let out = arc.sense.propagate(at, arc.delay.max);
            let slot = &mut ready[arc.to.as_raw() as usize];
            *slot = (*slot).max(out);
        }
    }
}

/// Forward minimum (earliest) arrival propagation, used by the
/// supplementary (short-path) constraints. Unreached nets keep
/// [`Time::INF`].
pub fn propagate_ready_min(graph: &TimingGraph, ready: &mut TimeTable) {
    for &net in graph.topo() {
        let at = ready[net.as_raw() as usize];
        if at.rise >= Time::INF && at.fall >= Time::INF {
            continue;
        }
        for &ai in graph.fanout_arcs(net) {
            let arc = graph.arc(ai);
            let out = crate::graph::propagate_min(arc.sense, at, arc.delay.min);
            let slot = &mut ready[arc.to.as_raw() as usize];
            *slot = (*slot).min(out);
        }
    }
}

/// Backward required-time propagation for maximum-delay constraints:
/// `Q_i = min_z (Q_z − P_iz)`. Seeds are closure times at cluster
/// outputs; unconstrained nets keep [`Time::INF`].
pub fn propagate_required(graph: &TimingGraph, required: &mut TimeTable) {
    for &net in graph.topo().iter().rev() {
        for &ai in graph.fanin_arcs(net) {
            let arc = graph.arc(ai);
            let req_out = required[arc.to.as_raw() as usize];
            if req_out.rise >= Time::INF && req_out.fall >= Time::INF {
                continue;
            }
            let req_in = required_backward(arc.sense, req_out, arc.delay.max);
            let slot = &mut required[arc.from.as_raw() as usize];
            *slot = (*slot).min(req_in);
        }
    }
}

/// Backward propagation of earliest-permissible arrival (hold-style)
/// bounds: `L_i = max_z (L_z − p_iz)` with minimum arc delays.
/// Unconstrained nets keep [`Time::NEG_INF`].
pub fn propagate_required_min(graph: &TimingGraph, lower: &mut TimeTable) {
    for &net in graph.topo().iter().rev() {
        for &ai in graph.fanin_arcs(net) {
            let arc = graph.arc(ai);
            let low_out = lower[arc.to.as_raw() as usize];
            if low_out.rise <= Time::NEG_INF && low_out.fall <= Time::NEG_INF {
                continue;
            }
            let low_in = lower_backward(arc.sense, low_out, arc.delay.min);
            let slot = &mut lower[arc.from.as_raw() as usize];
            *slot = (*slot).max(low_in);
        }
    }
}

/// Maps a required time at an arc's output back to the arc's input: the
/// input transition `tr` must arrive by
/// `min over reachable output transitions (required_out − delay)`.
pub(crate) fn required_backward(
    sense: Sense,
    required_out: RiseFall<Time>,
    delay: RiseFall<Time>,
) -> RiseFall<Time> {
    let minus = required_out.zip_with(delay, Time::saturating_sub);
    match sense {
        Sense::Positive => minus,
        Sense::Negative => minus.swapped(),
        Sense::NonUnate => RiseFall::splat(minus.rise.min(minus.fall)),
    }
}

fn lower_backward(
    sense: Sense,
    lower_out: RiseFall<Time>,
    delay: RiseFall<Time>,
) -> RiseFall<Time> {
    let minus = lower_out.zip_with(delay, Time::saturating_sub);
    match sense {
        Sense::Positive => minus,
        Sense::Negative => minus.swapped(),
        Sense::NonUnate => RiseFall::splat(minus.rise.max(minus.fall)),
    }
}

/// Per-net slack: `required − ready` (saturating), rise/fall split.
pub fn slack_table(ready: &TimeTable, required: &TimeTable) -> TimeTable {
    ready
        .iter()
        .zip(required)
        .map(|(r, q)| q.zip_with(*r, Time::saturating_sub))
        .collect()
}

/// The scalar node slack: the minimum of the rise and fall slacks.
pub fn scalar_slack(slack: RiseFall<Time>) -> Time {
    slack.rise.min(slack.fall)
}

/// The worst (smallest) scalar slack at `net`.
pub fn node_slack(slacks: &TimeTable, net: NetId) -> Time {
    scalar_slack(slacks[net.as_raw() as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_cells::{sc89, Binding};
    use hb_netlist::{Design, ModuleId, PinDir};
    use hb_units::Transition;

    /// Builds `a -> INV(u1) -> b -> INV(u2) -> y` and `c -> NAND2 ... `:
    /// a reconvergent two-level network:
    ///
    /// ```text
    /// a --INV--> b --+
    ///                NAND2 --> y
    /// a --BUF--> c --+
    /// ```
    fn reconvergent() -> (Design, ModuleId, hb_cells::Library) {
        let lib = sc89();
        let mut d = Design::new("r");
        lib.declare_into(&mut d).unwrap();
        let m = d.add_module("top").unwrap();
        let a = d.add_net(m, "a").unwrap();
        let b = d.add_net(m, "b").unwrap();
        let c = d.add_net(m, "c").unwrap();
        let y = d.add_net(m, "y").unwrap();
        d.add_port(m, "a", PinDir::Input, a).unwrap();
        d.add_port(m, "y", PinDir::Output, y).unwrap();
        let inv = d.leaf_by_name("INV_X1").unwrap();
        let buf = d.leaf_by_name("BUF_X1").unwrap();
        let nand = d.leaf_by_name("NAND2_X1").unwrap();
        let u1 = d.add_leaf_instance(m, "u1", inv).unwrap();
        let u2 = d.add_leaf_instance(m, "u2", buf).unwrap();
        let u3 = d.add_leaf_instance(m, "u3", nand).unwrap();
        d.connect(m, u1, "A", a).unwrap();
        d.connect(m, u1, "Y", b).unwrap();
        d.connect(m, u2, "A", a).unwrap();
        d.connect(m, u2, "Y", c).unwrap();
        d.connect(m, u3, "A", b).unwrap();
        d.connect(m, u3, "B", c).unwrap();
        d.connect(m, u3, "Y", y).unwrap();
        d.set_top(m).unwrap();
        (d, m, lib)
    }

    fn graph_of(d: &Design, m: ModuleId, lib: &hb_cells::Library) -> TimingGraph {
        let binding = Binding::new(d, lib);
        TimingGraph::build(d, m, &binding, lib).unwrap()
    }

    #[test]
    fn forward_takes_worst_input() {
        let (d, m, lib) = reconvergent();
        let g = graph_of(&d, m, &lib);
        let module = d.module(m);
        let a = module.net_by_name("a").unwrap();
        let b = module.net_by_name("b").unwrap();
        let c = module.net_by_name("c").unwrap();
        let y = module.net_by_name("y").unwrap();

        let mut ready = table(&g, Time::NEG_INF);
        ready[a.as_raw() as usize] = RiseFall::ZERO;
        propagate_ready_max(&g, &mut ready);

        let rb = ready[b.as_raw() as usize];
        let rc = ready[c.as_raw() as usize];
        let ry = ready[y.as_raw() as usize];
        assert!(rb.worst() > Time::ZERO && rc.worst() > Time::ZERO);
        // The buffer path is slower than the inverter path in sc89.
        assert!(rc.worst() > rb.worst());
        // NAND output must be later than both inputs.
        assert!(ry.worst() > rc.worst());
        // Unseeded nets untouched:
        let ck_like = table(&g, Time::NEG_INF);
        assert_eq!(ck_like[y.as_raw() as usize], RiseFall::splat(Time::NEG_INF));
    }

    #[test]
    fn min_arrival_is_never_later_than_max() {
        let (d, m, lib) = reconvergent();
        let g = graph_of(&d, m, &lib);
        let module = d.module(m);
        let a = module.net_by_name("a").unwrap();

        let mut rmax = table(&g, Time::NEG_INF);
        let mut rmin = table(&g, Time::INF);
        rmax[a.as_raw() as usize] = RiseFall::ZERO;
        rmin[a.as_raw() as usize] = RiseFall::ZERO;
        propagate_ready_max(&g, &mut rmax);
        propagate_ready_min(&g, &mut rmin);
        for (id, _) in module.nets() {
            let i = id.as_raw() as usize;
            if rmax[i].worst().is_finite() {
                for tr in Transition::BOTH {
                    assert!(
                        rmin[i][tr] <= rmax[i][tr],
                        "net {id}: min {} > max {}",
                        rmin[i][tr],
                        rmax[i][tr]
                    );
                }
            }
        }
    }

    #[test]
    fn backward_slack_agrees_with_forward() {
        let (d, m, lib) = reconvergent();
        let g = graph_of(&d, m, &lib);
        let module = d.module(m);
        let a = module.net_by_name("a").unwrap();
        let y = module.net_by_name("y").unwrap();

        let mut ready = table(&g, Time::NEG_INF);
        ready[a.as_raw() as usize] = RiseFall::ZERO;
        propagate_ready_max(&g, &mut ready);
        let closure = Time::from_ns(10);
        let mut required = table(&g, Time::INF);
        required[y.as_raw() as usize] = RiseFall::splat(closure);
        propagate_required(&g, &mut required);

        let slacks = slack_table(&ready, &required);
        // Slack at the endpoint equals closure − arrival.
        let end = slacks[y.as_raw() as usize];
        assert_eq!(
            scalar_slack(end),
            closure - ready[y.as_raw() as usize].worst()
        );
        // Source slack equals the worst endpoint slack through the
        // critical path (block method invariant: the minimum node slack
        // along a critical path is constant).
        let start = node_slack(&slacks, a);
        assert_eq!(start, scalar_slack(end));
    }

    #[test]
    fn required_tightens_through_nonunate() {
        // XOR: backward required time must take the minimum over both
        // output transitions.
        let lib = sc89();
        let mut d = Design::new("x");
        lib.declare_into(&mut d).unwrap();
        let m = d.add_module("top").unwrap();
        let a = d.add_net(m, "a").unwrap();
        let b = d.add_net(m, "b").unwrap();
        let y = d.add_net(m, "y").unwrap();
        d.add_port(m, "a", PinDir::Input, a).unwrap();
        d.add_port(m, "b", PinDir::Input, b).unwrap();
        d.add_port(m, "y", PinDir::Output, y).unwrap();
        let xor = d.leaf_by_name("XOR2_X1").unwrap();
        let u = d.add_leaf_instance(m, "u", xor).unwrap();
        d.connect(m, u, "A", a).unwrap();
        d.connect(m, u, "B", b).unwrap();
        d.connect(m, u, "Y", y).unwrap();
        d.set_top(m).unwrap();
        let g = graph_of(&d, m, &lib);

        let mut required = table(&g, Time::INF);
        required[y.as_raw() as usize] = RiseFall::new(Time::from_ns(8), Time::from_ns(5));
        propagate_required(&g, &mut required);
        let ra = required[a.as_raw() as usize];
        // Both input transitions see the tighter (5 ns) output bound.
        assert_eq!(ra.rise, ra.fall);
        assert!(ra.rise < Time::from_ns(5));
    }

    #[test]
    fn lower_bound_propagation() {
        let (d, m, lib) = reconvergent();
        let g = graph_of(&d, m, &lib);
        let module = d.module(m);
        let a = module.net_by_name("a").unwrap();
        let y = module.net_by_name("y").unwrap();

        let mut lower = table(&g, Time::NEG_INF);
        lower[y.as_raw() as usize] = RiseFall::splat(Time::from_ns(1));
        propagate_required_min(&g, &mut lower);
        let la = lower[a.as_raw() as usize];
        assert!(la.worst().is_finite());
        assert!(la.worst() < Time::from_ns(1), "min delays relax backwards");
    }

    #[test]
    fn sentinel_tables() {
        let (d, m, lib) = reconvergent();
        let g = graph_of(&d, m, &lib);
        let t = table(&g, Time::NEG_INF);
        assert_eq!(t.len(), d.module(m).net_count());
        assert!(t.iter().all(|v| v.rise == Time::NEG_INF));
    }
}
