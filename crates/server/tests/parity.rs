//! End-to-end parity: an ECO applied through a resident session must
//! yield **bit-identical** slacks and constraints to a cold one-shot
//! analysis of the identically edited design.
//!
//! This is the soundness contract of the content-addressed
//! [`SlackCache`](hummingbird::SlackCache): reuse across edits is only
//! legitimate if a warm re-analysis is indistinguishable from a cold
//! one. All timing values are integer picoseconds, so there is no
//! tolerance — every net slack, every terminal slack and every
//! generated constraint must match exactly. On top of parity, the
//! transparent-latch pipeline must demonstrate the daemon's point:
//! a nonzero `items_reused` count on the warm ECO re-analysis.

use hb_cells::{sc89, Binding, Library};
use hb_io::Frame;
use hb_netlist::{Design, InstRef, ModuleId};
use hb_resynth::{apply_eco, EcoOp};
use hb_server::{directives_from_spec, Session};
use hb_workloads::{counter, fsm12, random_pipeline, PipelineParams, Workload};
use hummingbird::{Analyzer, TimingReport};

/// A transparent-latch pipeline small enough for a debug-profile test
/// yet clustered enough for partial cache reuse to show.
fn pipeline(lib: &Library) -> Workload {
    random_pipeline(
        lib,
        PipelineParams {
            stages: 4,
            width: 8,
            gates_per_stage: 60,
            transparent: true,
            period_ns: 14,
            seed: 21,
            imbalance_pct: 30,
        },
    )
}

/// The first leaf instance with drive headroom in its cell family —
/// a deterministic, always-applicable resize target.
fn resizable_instance(design: &Design, module: ModuleId, lib: &Library) -> String {
    let binding = Binding::new(design, lib);
    for (_, inst) in design.module(module).instances() {
        let InstRef::Leaf(leaf) = inst.target() else {
            continue;
        };
        let Some(cell) = binding.cell_for_leaf(leaf) else {
            continue;
        };
        let variants = lib.family_variants(lib.cell(cell).family());
        let pos = variants.iter().position(|&v| v == cell).unwrap();
        if pos + 1 < variants.len() {
            return inst.name().to_owned();
        }
    }
    panic!("workload has no resizable instance");
}

fn assert_identical_slacks(
    warm: &TimingReport,
    cold: &TimingReport,
    design: &Design,
    top: ModuleId,
    what: &str,
) {
    assert_eq!(warm.ok(), cold.ok(), "{what}: verdict differs");
    assert_eq!(
        warm.worst_slack(),
        cold.worst_slack(),
        "{what}: worst slack differs"
    );
    let (tw, tc) = (warm.terminal_slacks(), cold.terminal_slacks());
    assert_eq!(tw.len(), tc.len(), "{what}: terminal count differs");
    for (a, b) in tw.iter().zip(tc) {
        assert_eq!(a.kind, b.kind, "{what}: terminal kind");
        assert_eq!(a.name, b.name, "{what}: terminal name");
        assert_eq!(a.slack, b.slack, "{what}: slack at {} {:?}", a.name, a.kind);
    }
    let module = design.module(top);
    for (net, n) in module.nets() {
        assert_eq!(
            warm.net_slack(net),
            cold.net_slack(net),
            "{what}: net slack at {}",
            n.name()
        );
    }
    match (warm.constraints(), cold.constraints()) {
        (None, None) => {}
        (Some(cw), Some(cc)) => {
            for (net, n) in module.nets() {
                assert_eq!(
                    cw.ready_at(net),
                    cc.ready_at(net),
                    "{what}: ready at {}",
                    n.name()
                );
                assert_eq!(
                    cw.required_at(net),
                    cc.required_at(net),
                    "{what}: required at {}",
                    n.name()
                );
            }
        }
        _ => panic!("{what}: constraint presence differs"),
    }
}

/// Drives one workload through the daemon session: load → analyze →
/// eco → (optionally constraints), mirroring every edit on a cold
/// copy. Returns the ECO reply's reused count.
fn run_parity(w: &Workload, lib: &Library, op: &EcoOp, constraints: bool) -> u64 {
    let text = hb_io::write_hum_with_timing(&w.design, &w.clocks, &directives_from_spec(&w.spec));

    // Warm path: resident session with a persistent cache.
    let mut session = Session::new(lib.clone());
    let reply = session.handle(&Frame::new("load").with_payload(text.clone()));
    assert_eq!(
        reply.verb, "ok",
        "{}: load failed: {:?}",
        w.name, reply.payload
    );
    let verb = if constraints {
        "constraints"
    } else {
        "analyze"
    };
    let reply = session.handle(&Frame::new(verb));
    assert_eq!(
        reply.verb, "ok",
        "{}: {verb} failed: {:?}",
        w.name, reply.payload
    );

    let eco_req = match op {
        EcoOp::RetargetDrive { inst, steps } => Frame::new("eco")
            .arg("op", "resize")
            .arg("inst", inst.clone())
            .arg("steps", *steps),
        EcoOp::ScaleNetLoad { net, percent } => Frame::new("eco")
            .arg("op", "scale-net")
            .arg("net", net.clone())
            .arg("percent", *percent),
    };
    let reply = session.handle(&eco_req);
    assert_eq!(
        reply.verb, "ok",
        "{}: eco failed: {:?}",
        w.name, reply.payload
    );
    let reused: u64 = reply.get("items_reused").unwrap().parse().unwrap();
    let swept: u64 = reply.get("items_swept").unwrap().parse().unwrap();
    assert!(
        swept > 0,
        "{}: an ECO must dirty at least one cluster",
        w.name
    );

    // Cold path: parse the same text, apply the same edit, analyze
    // from scratch with a fresh cache.
    let file = hb_io::parse_hum(&text, lib).unwrap();
    let mut design = file.design;
    let top = design.top().unwrap();
    apply_eco(&mut design, top, lib, op).unwrap();
    let spec = hb_server::spec_from_directives(&design, top, &file.clocks, &file.timing).unwrap();
    let analyzer = Analyzer::new(&design, top, lib, &file.clocks, spec).unwrap();
    let cold = if constraints {
        analyzer.generate_constraints()
    } else {
        analyzer.analyze()
    };

    let warm = session.last_report().expect("analyzed through the session");
    assert_identical_slacks(warm, &cold, &design, top, w.name.as_str());
    reused
}

#[test]
fn eco_resize_matches_cold_analysis_everywhere() {
    let lib = sc89();
    for w in [fsm12(&lib, true), counter(&lib, 8, 10), pipeline(&lib)] {
        let inst = resizable_instance(&w.design, w.module, &lib);
        run_parity(&w, &lib, &EcoOp::RetargetDrive { inst, steps: 1 }, false);
    }
}

#[test]
fn eco_scale_net_matches_cold_analysis() {
    let lib = sc89();
    let w = pipeline(&lib);
    // Scale the first stage-internal net the resizable instance drives.
    let module = w.design.module(w.module);
    let net = module
        .nets()
        .map(|(_, n)| n.name().to_owned())
        .find(|n| n.contains("s0"))
        .unwrap_or_else(|| module.nets().next().unwrap().1.name().to_owned());
    run_parity(&w, &lib, &EcoOp::ScaleNetLoad { net, percent: 180 }, false);
}

#[test]
fn warm_eco_reuses_cache_on_latch_pipeline() {
    let lib = sc89();
    let w = pipeline(&lib);
    let inst = resizable_instance(&w.design, w.module, &lib);
    let reused = run_parity(&w, &lib, &EcoOp::RetargetDrive { inst, steps: 1 }, false);
    assert!(
        reused > 0,
        "a one-instance ECO on the transparent-latch pipeline must reuse \
         untouched cluster sweeps (got items_reused = {reused})"
    );
}

#[test]
fn eco_constraints_match_cold_generation() {
    let lib = sc89();
    let w = fsm12(&lib, true);
    let inst = resizable_instance(&w.design, w.module, &lib);
    run_parity(&w, &lib, &EcoOp::RetargetDrive { inst, steps: 1 }, true);
}
