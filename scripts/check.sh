#!/usr/bin/env bash
# Repository gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test -q"
cargo test -q

echo "== chaos suite (3 fixed seeds + 1 fresh, metrics armed)"
# The chaos tests always run their three fixed seeds; HB_CHAOS_SEED
# adds one fresh seed per run so the fault matrix keeps exploring.
# The suite arms the observability layer itself, so every fault path
# is exercised with live metrics. On failure, the seed below
# reproduces it exactly.
HB_CHAOS_SEED=$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')
if ! HB_CHAOS_SEED="$HB_CHAOS_SEED" cargo test -q -p hb-server --test chaos; then
    echo "chaos suite FAILED; reproduce with: HB_CHAOS_SEED=$HB_CHAOS_SEED cargo test -p hb-server --test chaos"
    exit 1
fi

echo "== daemon loopback smoke test"
# Drive a real served socket end to end — load, analyze, edit, query,
# dump — then check the daemon's slack answer against a cold one-shot
# analysis of the dumped (edited) design.
cargo build -q --release -p hb-cli
HB=target/release/hummingbird
SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT
$HB serve --listen 127.0.0.1:0 > "$SMOKE_DIR/serve.log" &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$SMOKE_DIR/serve.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve never announced its port"; exit 1; }
$HB query "$ADDR" load designs/two_phase_pipeline.hum
$HB query "$ADDR" analyze
$HB query "$ADDR" eco resize b0 1 | tee "$SMOKE_DIR/eco.out"
grep -q "items_reused" "$SMOKE_DIR/eco.out"
$HB query "$ADDR" slack mid
$HB query "$ADDR" dump > "$SMOKE_DIR/dump.out"
# Strip the reply header; the payload is the edited .hum design.
tail -n +2 "$SMOKE_DIR/dump.out" > "$SMOKE_DIR/edited.hum"
# Metrics smoke: the exposition must parse (every sample line is
# `series value`) and the request counters must cover the five
# requests issued above plus the metrics query itself.
$HB query "$ADDR" metrics > "$SMOKE_DIR/metrics.out"
head -1 "$SMOKE_DIR/metrics.out" | grep -q "format=prometheus-text"
tail -n +2 "$SMOKE_DIR/metrics.out" | awk '
    NF == 0 || /^#/ { next }
    NF != 2 || $2 !~ /^-?[0-9]/ { print "bad exposition line: " $0; bad = 1 }
    $1 ~ /^hb_requests_total{/ { sum += $2 }
    END {
        if (bad) exit 1
        if (sum < 6) { print "hb_requests_total covers " sum " < 6 requests"; exit 1 }
        print "metrics exposition ok: hb_requests_total=" sum
    }
'
WARM=$(sed -n 's/^ok .*worst=\([^ ]*\).*/\1/p' "$SMOKE_DIR/eco.out")
$HB query "$ADDR" shutdown
wait "$SERVE_PID"
$HB analyze "$SMOKE_DIR/edited.hum" > "$SMOKE_DIR/cold.out" || true
COLD=$(sed -n 's/.*worst slack \([^ ]*\) .*/\1/p' "$SMOKE_DIR/cold.out" | head -1)
echo "warm worst slack: $WARM / cold worst slack: $COLD"
[ -n "$WARM" ] && [ "$WARM" = "$COLD" ] || {
    echo "daemon and one-shot analyses disagree"; exit 1
}

echo "== what-if smoke test (parametric verbs, zero re-sweeps)"
# Serve a generated design whose feasibility boundary is interior to
# the parametric domain, then drive the what-if verbs end to end.
# Two contracts are gated here: `slack-at` at the nominal period is
# bit-identical to the numeric answer of record, and the what-if
# verbs answer without adding a single (cluster, pass) sweep sample
# beyond the resident analysis — the symbolic table is doing the
# work, not hidden re-analysis.
$HB gen --kind sram --cells 2000 --seed 7 -o "$SMOKE_DIR/whatif.hum"
$HB serve --listen 127.0.0.1:0 > "$SMOKE_DIR/whatif_serve.log" &
WHATIF_PID=$!
WADDR=""
for _ in $(seq 1 100); do
    WADDR=$(sed -n 's/^listening on //p' "$SMOKE_DIR/whatif_serve.log")
    [ -n "$WADDR" ] && break
    sleep 0.1
done
[ -n "$WADDR" ] || { echo "what-if serve never announced its port"; exit 1; }
$HB query "$WADDR" load "$SMOKE_DIR/whatif.hum"
NUMERIC_WORST=$($HB query "$WADDR" analyze | sed -n 's/^ok .*worst=\([^ ]*\).*/\1/p')
[ -n "$NUMERIC_WORST" ] || { echo "what-if analyze carried no worst="; exit 1; }
sweep_count() { # total (cluster, pass) sweep samples the engine recorded
    $HB query "$1" metrics | awk '
        $1 ~ /^hb_engine_sweep_nanoseconds_count/ { sum += $2 }
        END { print sum + 0 }'
}
S1=$(sweep_count "$WADDR")
$HB query "$WADDR" min-period | tee "$SMOKE_DIR/minperiod.out"
grep -q "feasible=1" "$SMOKE_DIR/minperiod.out"
MINP=$(sed -n 's/^ok period=\([^ ]*\).*/\1/p' "$SMOKE_DIR/minperiod.out")
NOM=$(sed -n 's/^ok .*nominal=\([^ ]*\).*/\1/p' "$SMOKE_DIR/minperiod.out")
[ -n "$MINP" ] && [ -n "$NOM" ] || { echo "min-period reply missing fields"; exit 1; }
$HB query "$WADDR" slack-at "period=$MINP" | grep -q "ok=1"
AT_NOM=$($HB query "$WADDR" slack-at "period=$NOM" | sed -n 's/^ok .*worst=\([^ ]*\).*/\1/p')
$HB query "$WADDR" period-sweep "lo=$MINP" "hi=$NOM" step=1ns | grep -q "^ok count="
S2=$(sweep_count "$WADDR")
$HB query "$WADDR" shutdown
wait "$WHATIF_PID"
echo "what-if worst at nominal: $AT_NOM / numeric: $NUMERIC_WORST (sweep samples $S1 -> $S2)"
[ "$AT_NOM" = "$NUMERIC_WORST" ] || {
    echo "parametric nominal slack diverges from the numeric answer"; exit 1
}
[ "$S1" -gt 0 ] || { echo "sweep counter never armed"; exit 1; }
[ "$S1" = "$S2" ] || {
    echo "what-if verbs re-swept the design ($S1 -> $S2)"; exit 1
}

echo "== reactor loopback smoke test"
# The same daemon on the poll(2) event loop: serve, load, then a
# pipelined transcript with a batched multi-node slack, then shutdown.
$HB serve --listen 127.0.0.1:0 --reactor > "$SMOKE_DIR/reactor.log" &
REACTOR_PID=$!
RADDR=""
for _ in $(seq 1 100); do
    RADDR=$(sed -n 's/^listening on //p' "$SMOKE_DIR/reactor.log")
    [ -n "$RADDR" ] && break
    sleep 0.1
done
[ -n "$RADDR" ] || { echo "reactor serve never announced its port"; exit 1; }
$HB query "$RADDR" load designs/two_phase_pipeline.hum
$HB query "$RADDR" analyze
printf 'slack mid\nslack a1y b0y dout\nworst-paths 3\nstats\n' > "$SMOKE_DIR/reqs.txt"
$HB query "$RADDR" --pipeline "$SMOKE_DIR/reqs.txt" | tee "$SMOKE_DIR/pipeline.out"
grep -q "count=3" "$SMOKE_DIR/pipeline.out"   # the batched slack answered all 3 nodes
grep -q "conn_buffer_bytes=" "$SMOKE_DIR/pipeline.out"
$HB query "$RADDR" shutdown
wait "$REACTOR_PID"

echo "== fleet loopback smoke test (two tenants, failover)"
# Two tenants on a primary with a warm standby: per-design loads and
# concurrent ECOs stream to the standby through the journal; killing
# the primary outright promotes the standby, which must answer
# bit-identically to the primary's last acknowledged state and then
# accept writes of its own.
$HB serve --listen 127.0.0.1:0 --max-designs 8 > "$SMOKE_DIR/primary.log" &
PRIMARY_PID=$!
PADDR=""
for _ in $(seq 1 100); do
    PADDR=$(sed -n 's/^listening on //p' "$SMOKE_DIR/primary.log")
    [ -n "$PADDR" ] && break
    sleep 0.1
done
[ -n "$PADDR" ] || { echo "fleet primary never announced its port"; exit 1; }
$HB serve --listen 127.0.0.1:0 --standby-of "$PADDR" > "$SMOKE_DIR/standby.log" &
STANDBY_PID=$!
SADDR=""
for _ in $(seq 1 100); do
    SADDR=$(sed -n 's/^listening on //p' "$SMOKE_DIR/standby.log")
    [ -n "$SADDR" ] && break
    sleep 0.1
done
[ -n "$SADDR" ] || { echo "fleet standby never announced its port"; exit 1; }
for D in d1 d2; do
    $HB query "$PADDR" open "$D"
    $HB query "$PADDR" --design "$D" load designs/two_phase_pipeline.hum
    $HB query "$PADDR" --design "$D" analyze
done
# Concurrent ECOs on both tenants: per-design locks, no cross-talk.
$HB query "$PADDR" --design d1 eco resize b0 1 > "$SMOKE_DIR/eco_d1.out" &
ECO1_PID=$!
$HB query "$PADDR" --design d2 eco resize a0 1 > "$SMOKE_DIR/eco_d2.out" &
ECO2_PID=$!
wait "$ECO1_PID"
wait "$ECO2_PID"
grep -q "items_reused" "$SMOKE_DIR/eco_d1.out"
grep -q "items_reused" "$SMOKE_DIR/eco_d2.out"
# The primary's answers of record (seconds= is wall-clock noise).
for D in d1 d2; do
    $HB query "$PADDR" --design "$D" slack mid \
        | sed 's/seconds=[^ ]*/seconds=_/g' > "$SMOKE_DIR/primary_$D.out"
    $HB query "$PADDR" --design "$D" dump \
        | sed 's/seconds=[^ ]*/seconds=_/g' >> "$SMOKE_DIR/primary_$D.out"
done
fleet_fp() { # $1 addr, $2 design: the fp= column of its `designs` line
    "$HB" query "$1" designs | awk -v d="$2" '
        $1 == d { for (i = 1; i <= NF; i++) if (sub(/^fp=/, "", $i)) print $i }'
}
P1=$(fleet_fp "$PADDR" d1)
P2=$(fleet_fp "$PADDR" d2)
CAUGHT_UP=""
for _ in $(seq 1 200); do
    if [ "$(fleet_fp "$SADDR" d1)" = "$P1" ] && [ "$(fleet_fp "$SADDR" d2)" = "$P2" ]; then
        CAUGHT_UP=1
        break
    fi
    sleep 0.1
done
[ -n "$CAUGHT_UP" ] || { echo "standby never caught up to the primary"; exit 1; }
# Kill the primary outright; the standby promotes after missed syncs
# (promote_after x sync_interval, 600 ms at the defaults). Poll its
# stats for the role flip rather than sleeping a fixed grace.
kill -9 "$PRIMARY_PID"
wait "$PRIMARY_PID" 2>/dev/null || true
PROMOTED=""
for _ in $(seq 1 200); do
    if $HB query "$SADDR" stats | grep -q "role=primary"; then
        PROMOTED=1
        break
    fi
    sleep 0.05
done
[ -n "$PROMOTED" ] || { echo "standby never reported role=primary"; exit 1; }
for D in d1 d2; do
    $HB query "$SADDR" --design "$D" slack mid \
        | sed 's/seconds=[^ ]*/seconds=_/g' > "$SMOKE_DIR/standby_$D.out"
    $HB query "$SADDR" --design "$D" dump \
        | sed 's/seconds=[^ ]*/seconds=_/g' >> "$SMOKE_DIR/standby_$D.out"
    diff "$SMOKE_DIR/primary_$D.out" "$SMOKE_DIR/standby_$D.out" || {
        echo "failover: standby answers diverged for $D"; exit 1
    }
done
# The promoted standby accepts writes of its own.
$HB query "$SADDR" --design d1 eco resize a0 1 | grep -q "items_reused"
$HB query "$SADDR" shutdown
wait "$STANDBY_PID"
echo "fleet failover smoke ok: standby answers bit-identical"

echo "== quorum failover smoke test (three nodes, kill the primary)"
# A full quorum cluster over real sockets: a primary and two ranked
# standbys carrying each other as --peers. Killing the primary must
# promote exactly one standby by majority election; the loser keeps
# fencing writes and chains behind the winner.
free_port() {
    python3 -c 'import socket; s = socket.socket(); s.bind(("127.0.0.1", 0)); print(s.getsockname()[1])'
}
QA="127.0.0.1:$(free_port)"
QB="127.0.0.1:$(free_port)"
QC="127.0.0.1:$(free_port)"
$HB serve --listen "$QA" --peers "$QB,$QC" > "$SMOKE_DIR/qa.log" &
QA_PID=$!
$HB serve --listen "$QB" --standby-of "$QA" --peers "$QA,$QC" > "$SMOKE_DIR/qb.log" &
QB_PID=$!
$HB serve --listen "$QC" --standby-of "$QA" --peers "$QA,$QB" > "$SMOKE_DIR/qc.log" &
QC_PID=$!
for LOG in qa qb qc; do
    UP=""
    for _ in $(seq 1 100); do
        grep -q "^listening on " "$SMOKE_DIR/$LOG.log" && { UP=1; break; }
        sleep 0.1
    done
    [ -n "$UP" ] || { echo "quorum node $LOG never announced its port"; exit 1; }
done
$HB query "$QA" load designs/two_phase_pipeline.hum
$HB query "$QA" analyze
$HB query "$QA" eco resize b0 1 | grep -q "items_reused"
$HB query "$QA" stats | grep -q "role=primary term=1"
QFP=$(fleet_fp "$QA" default)
for NODE in "$QB" "$QC"; do
    SYNCED=""
    for _ in $(seq 1 200); do
        [ "$(fleet_fp "$NODE" default)" = "$QFP" ] && { SYNCED=1; break; }
        sleep 0.05
    done
    [ -n "$SYNCED" ] || { echo "quorum standby $NODE never caught up"; exit 1; }
done
kill -9 "$QA_PID"
wait "$QA_PID" 2>/dev/null || true
WINNER=""
for _ in $(seq 1 200); do
    for NODE in "$QB" "$QC"; do
        if $HB query "$NODE" stats | grep -q "role=primary"; then
            WINNER="$NODE"
            break
        fi
    done
    [ -n "$WINNER" ] && break
    sleep 0.05
done
[ -n "$WINNER" ] || { echo "no standby won the election"; exit 1; }
if [ "$WINNER" = "$QB" ]; then LOSER="$QC"; else LOSER="$QB"; fi
$HB query "$LOSER" stats | grep -q "role=primary" && {
    echo "split brain: both standbys promoted"; exit 1
}
# The winner's term moved past the dead primary's; it accepts writes.
$HB query "$WINNER" stats | grep -Eq "term=([2-9]|[0-9]{2,})"
$HB query "$WINNER" eco resize a0 1 | grep -q "items_reused"
# The loser stays fenced and chains behind the winner's new state
# (the client exits nonzero on the error reply, hence the `|| true`).
LOSER_OUT=$($HB query "$LOSER" eco resize a0 1 2>&1 || true)
echo "$LOSER_OUT" | grep -q "fenced" || {
    echo "loser write was not fenced: $LOSER_OUT"; exit 1
}
WFP=$(fleet_fp "$WINNER" default)
CHAINED=""
for _ in $(seq 1 200); do
    [ "$(fleet_fp "$LOSER" default)" = "$WFP" ] && { CHAINED=1; break; }
    sleep 0.05
done
[ -n "$CHAINED" ] || { echo "loser never chained behind the winner"; exit 1; }
$HB query "$WINNER" shutdown
$HB query "$LOSER" shutdown
wait "$QB_PID" 2>/dev/null || true
wait "$QC_PID" 2>/dev/null || true
echo "quorum failover smoke ok: single promotion, loser fenced and chained"

echo "== generator smoke test (gen -> load -> analyze -> slack)"
# Generate a 10k-cell design, serve it, and query a slack through the
# daemon: the generator's output must be loadable and analyzable as an
# ordinary .hum file, not just in-process.
$HB gen --kind sram --cells 10000 --seed 1 -o "$SMOKE_DIR/gen10k.hum"
$HB analyze "$SMOKE_DIR/gen10k.hum" > "$SMOKE_DIR/gen10k.out" || {
    rc=$?
    [ "$rc" -eq 1 ] || { echo "gen smoke: analyze failed with $rc"; exit 1; }
}
grep -q "worst slack" "$SMOKE_DIR/gen10k.out"
$HB serve --listen 127.0.0.1:0 > "$SMOKE_DIR/gen_serve.log" &
GEN_SERVE_PID=$!
GADDR=""
for _ in $(seq 1 100); do
    GADDR=$(sed -n 's/^listening on //p' "$SMOKE_DIR/gen_serve.log")
    [ -n "$GADDR" ] && break
    sleep 0.1
done
[ -n "$GADDR" ] || { echo "gen smoke serve never announced its port"; exit 1; }
$HB query "$GADDR" load "$SMOKE_DIR/gen10k.hum"
$HB query "$GADDR" analyze | grep -q "worst="
$HB query "$GADDR" slack do0 | grep -q "slack"
$HB query "$GADDR" shutdown
wait "$GEN_SERVE_PID"
echo "generator smoke ok"

echo "== generator prep-time regression gate (100k cells)"
# Preparing a 100k-cell design (the profile's "shard build" line,
# which is the analyzer's preprocessing) must stay within 25% of the
# committed BENCH_perf.json scaling row. Best of two runs.
$HB gen --kind sram --cells 100000 --seed 1 -o "$SMOKE_DIR/gen100k.hum"
prep_seconds() { # the shard-build profile line
    $HB analyze "$SMOKE_DIR/gen100k.hum" --profile 2>/dev/null | awk '
        /^ *shard build/ { s += $3 }
        END { printf "%.6f", s }'
}
P1=$(prep_seconds)
P2=$(prep_seconds)
FRESH=$(awk -v a="$P1" -v b="$P2" 'BEGIN { print (a < b) ? a : b }')
BASE=$(awk '
    /"scaling"/ { inside = 1 }
    inside && /"cells": 100000,/ {
        if (match($0, /"prep_seconds": [0-9.]+/)) {
            print substr($0, RSTART + 16, RLENGTH - 16); exit
        }
    }' BENCH_perf.json)
[ -n "$BASE" ] && [ -n "$FRESH" ] || {
    echo "prep gate: missing measurements (base=$BASE fresh=$FRESH)"; exit 1
}
awk -v base="$BASE" -v fresh="$FRESH" 'BEGIN {
    printf "prep gate: committed %.3fs, fresh %.3fs (%.0f%%)\n", base, fresh, 100 * fresh / base
    if (fresh > base / 0.8) {
        printf "prep-time regression: 100k prep slowed more than 25%%\n"
        exit 1
    }
}'

echo "== full generator property matrix"
HB_GEN_FULL=1 cargo test -q -p hb-bench --test gen_properties

echo "== server qps regression gate"
# A quick benchmark run must stay within 20% of the committed
# BENCH_server.json on the two load-bearing throughput numbers: the
# blocking transport's sequential slack qps and the reactor's
# pipelined slack qps. Quick mode uses fewer samples and the box may
# be loaded, so take the best of two runs; the 20% band absorbs the
# remaining noise without letting a real regression through.
cargo build -q --release -p hb-bench --bin server_bench
target/release/server_bench --quick --out "$SMOKE_DIR/bench_a.json" > /dev/null
target/release/server_bench --quick --out "$SMOKE_DIR/bench_b.json" > /dev/null
gate_qps() { # $1 file, $2 section regex: first queries_per_second after it
    awk -v sec="$2" '
        $0 ~ sec { inside = 1 }
        inside && /"queries_per_second"/ {
            gsub(/[^0-9.]/, "", $2); print $2; exit
        }
    ' "$1"
}
for section in '"slack_query"' '"fleet8"' '"slack_pipelined"'; do
    BASE=$(gate_qps BENCH_server.json "$section")
    A=$(gate_qps "$SMOKE_DIR/bench_a.json" "$section")
    B=$(gate_qps "$SMOKE_DIR/bench_b.json" "$section")
    FRESH=$(awk -v a="$A" -v b="$B" 'BEGIN { print (a > b) ? a : b }')
    [ -n "$BASE" ] && [ -n "$FRESH" ] || {
        echo "qps gate: missing $section in benchmark JSON"; exit 1
    }
    awk -v base="$BASE" -v fresh="$FRESH" -v sec="$section" 'BEGIN {
        pct = 100 * fresh / base
        printf "%s: committed %.0f qps, fresh %.0f qps (%.0f%%)\n", sec, base, fresh, pct
        if (fresh < 0.8 * base) {
            printf "qps regression: %s dropped more than 20%%\n", sec
            exit 1
        }
    }'
done

# Failover gate: promotion downtime stays bounded and the standby
# resync actually flows through the bounded pager (multiple pages,
# nonzero bytes). Downtime takes the best of the two quick runs; the
# 2 s ceiling is ~4x the committed figure, absorbing a loaded box.
gate_field() { # $1 file, $2 field name: its numeric value
    awk -v f="\"$2\"" '$0 ~ f { gsub(/[^0-9.]/, "", $2); print $2; exit }' "$1"
}
DT_A=$(gate_field "$SMOKE_DIR/bench_a.json" promotion_downtime_ms)
DT_B=$(gate_field "$SMOKE_DIR/bench_b.json" promotion_downtime_ms)
PAGES=$(gate_field "$SMOKE_DIR/bench_a.json" resync_pages)
BYTES=$(gate_field "$SMOKE_DIR/bench_a.json" resync_bytes_paged)
[ -n "$DT_A" ] && [ -n "$DT_B" ] && [ -n "$PAGES" ] && [ -n "$BYTES" ] || {
    echo "failover gate: missing fields in benchmark JSON"; exit 1
}
awk -v a="$DT_A" -v b="$DT_B" -v pages="$PAGES" -v bytes="$BYTES" 'BEGIN {
    dt = (a < b) ? a : b
    printf "failover gate: downtime %.0f ms, resync %d pages / %d bytes\n", dt, pages, bytes
    if (dt > 2000) { printf "failover regression: promotion downtime %.0f ms > 2000 ms\n", dt; exit 1 }
    if (pages < 2) { printf "failover regression: resync collapsed to %d page(s)\n", pages; exit 1 }
    if (bytes <= 0) { printf "failover regression: no resync bytes paged\n"; exit 1 }
}'

echo "== all checks passed"
