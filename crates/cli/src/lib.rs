//! The `hummingbird` command-line driver, as a testable library.
//!
//! ```text
//! hummingbird check       <design.hum>
//! hummingbird analyze     <design.hum> [options]
//! hummingbird constraints <design.hum> [options]
//! hummingbird passes      <design.hum> [options]
//! hummingbird resynth     <design.hum> -o <out.hum> [options]
//! hummingbird sweep       <design.hum> [--scales 50,75,100,150] [options]
//! hummingbird serve       [--listen ADDR | --stdio] [--library FILE]
//! hummingbird query       [--design ID] [--timeout MS] <ADDR> <request> [args...]
//! hummingbird flow        <ADDR> <design.hum> [--designs N] [--ecos K] [--jobs C]
//! hummingbird gen         --kind <pipeline|sbox|sram> --cells N --seed S
//!                         [--clocks C] [-o OUT.hum]
//!
//! options:
//!   --clock-port PORT=CLOCK   bind a module port to a clock waveform
//!                             (default: every clock binds the port with
//!                             its own name, when one exists)
//!   --arrive PORT=TIME        data-input arrival offset after the first
//!                             timeline edge (e.g. --arrive din=2ns)
//!   --require PORT=TIME       output required offset, same reference
//!   --edge-triggered          use the McWilliams-style latch baseline
//!   --min-delays              also check supplementary (hold) constraints
//!   --min-period              analyze: report the smallest feasible clock
//!                             period, solved from one symbolic (parametric)
//!                             analysis instead of a binary search
//!   --profile                 arm timing instrumentation and print a
//!                             phase breakdown (parse / shard build /
//!                             sweep passes / report) after analyze
//!   --paths N                 print at most N slow paths (default 5)
//!   --scales LIST             sweep: comma-separated clock-scale percents
//!   --library FILE            liberty-lite cell library (default: built-in sc89)
//! ```
//!
//! Designs may carry their own boundary timing (`clockport`, `arrive`,
//! `require` directives in the `.hum` file); command-line options
//! override file directives.
//!
//! Designs are `.hum` files (see [`hb_io`]) carrying their clock
//! waveforms; cells resolve against the built-in `sc89` library.

use std::fmt;
use std::io::Write;

use hb_cells::{sc89, Library};
use hb_clock::ClockSet;
use hb_io::HumFile;
use hb_netlist::{Design, ModuleId};
use hb_units::{Time, Transition};
use hummingbird::{AnalysisOptions, Analyzer, EdgeSpec, LatchModel, SlackCache, Spec};

mod daemon;

/// What went wrong, for exit-code purposes. Scripts driving the CLI
/// can tell a typo from a corrupt netlist from a full disk:
///
/// | exit | meaning                                         |
/// |------|-------------------------------------------------|
/// | 0    | success (timing met, where applicable)          |
/// | 1    | analysis ran; timing is infeasible              |
/// | 2    | bad command-line usage                          |
/// | 3    | the OS refused a read, write, bind, or connect  |
/// | 4    | an input file failed to parse                   |
/// | 5    | the design is invalid or outside the supported  |
/// |      | class, or a daemon request was refused          |
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Bad command-line usage.
    Usage,
    /// A filesystem or network operation failed.
    Io,
    /// An input file (design, library, BLIF) failed to parse.
    Parse,
    /// The analyzer or daemon refused the request.
    Analysis,
}

/// A fatal driver error (bad usage, unreadable file, analysis refusal).
#[derive(Debug)]
pub struct CliError {
    kind: ErrorKind,
    message: String,
}

impl CliError {
    fn usage(message: impl Into<String>) -> CliError {
        CliError {
            kind: ErrorKind::Usage,
            message: message.into(),
        }
    }

    fn io(message: impl Into<String>) -> CliError {
        CliError {
            kind: ErrorKind::Io,
            message: message.into(),
        }
    }

    fn parse(message: impl Into<String>) -> CliError {
        CliError {
            kind: ErrorKind::Parse,
            message: message.into(),
        }
    }

    fn analysis(message: impl Into<String>) -> CliError {
        CliError {
            kind: ErrorKind::Analysis,
            message: message.into(),
        }
    }

    /// The error's category.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The process exit code this error maps to (see [`ErrorKind`]).
    pub fn exit_code(&self) -> u8 {
        match self.kind {
            ErrorKind::Usage => 2,
            ErrorKind::Io => 3,
            ErrorKind::Parse => 4,
            ErrorKind::Analysis => 5,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Parsed command-line options.
struct Options {
    command: String,
    input: String,
    output: Option<String>,
    clock_ports: Vec<(String, String)>,
    arrivals: Vec<(String, Time)>,
    requireds: Vec<(String, Time)>,
    edge_triggered: bool,
    min_delays: bool,
    min_period: bool,
    profile: bool,
    max_paths: usize,
    scales: Vec<u32>,
    library: Option<String>,
    threads: usize,
}

fn parse_args(args: &[&str]) -> Result<Options, CliError> {
    let mut it = args.iter();
    let command = it.next().ok_or_else(|| CliError::usage(USAGE))?.to_string();
    if ![
        "check",
        "analyze",
        "constraints",
        "passes",
        "resynth",
        "sweep",
    ]
    .contains(&command.as_str())
    {
        return Err(CliError::usage(format!(
            "unknown command {command:?}\n{USAGE}"
        )));
    }
    let mut opts = Options {
        command,
        input: String::new(),
        output: None,
        clock_ports: Vec::new(),
        arrivals: Vec::new(),
        requireds: Vec::new(),
        edge_triggered: false,
        min_delays: false,
        min_period: false,
        profile: false,
        max_paths: 5,
        scales: vec![50, 75, 100, 150, 200],
        library: None,
        threads: 0,
    };
    while let Some(&arg) = it.next() {
        let mut value = |name: &str| -> Result<String, CliError> {
            it.next()
                .map(|s| s.to_string())
                .ok_or_else(|| CliError::usage(format!("{name} needs a value")))
        };
        match arg {
            "--clock-port" => {
                let v = value("--clock-port")?;
                let (p, c) = v
                    .split_once('=')
                    .ok_or_else(|| CliError::usage("--clock-port expects PORT=CLOCK"))?;
                opts.clock_ports.push((p.to_owned(), c.to_owned()));
            }
            "--arrive" | "--require" => {
                let v = value(arg)?;
                let (p, t) = v
                    .split_once('=')
                    .ok_or_else(|| CliError::usage(format!("{arg} expects PORT=TIME")))?;
                let t: Time = t
                    .parse()
                    .map_err(|e| CliError::usage(format!("bad time in {arg}: {e}")))?;
                if arg == "--arrive" {
                    opts.arrivals.push((p.to_owned(), t));
                } else {
                    opts.requireds.push((p.to_owned(), t));
                }
            }
            "--edge-triggered" => opts.edge_triggered = true,
            "--min-delays" => opts.min_delays = true,
            "--min-period" => opts.min_period = true,
            "--profile" => opts.profile = true,
            "--paths" => {
                opts.max_paths = value("--paths")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("bad --paths value: {e}")))?;
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| CliError::usage(format!("bad --threads value: {e}")))?;
            }
            "--scales" => {
                let list = value("--scales")?;
                opts.scales = list
                    .split(',')
                    .map(|t| t.trim().parse::<u32>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| CliError::usage(format!("bad --scales value: {e}")))?;
                if opts.scales.is_empty() || opts.scales.contains(&0) {
                    return Err(CliError::usage("--scales needs positive percentages"));
                }
            }
            "--library" => opts.library = Some(value("--library")?),
            "-o" | "--output" => opts.output = Some(value(arg)?),
            other if !other.starts_with('-') && opts.input.is_empty() => {
                opts.input = other.to_owned();
            }
            other => {
                return Err(CliError::usage(format!(
                    "unexpected argument {other:?}\n{USAGE}"
                )))
            }
        }
    }
    if opts.input.is_empty() {
        return Err(CliError::usage(format!("missing input file\n{USAGE}")));
    }
    Ok(opts)
}

const USAGE: &str =
    "usage: hummingbird <check|analyze|constraints|passes|resynth|sweep|serve|query|flow|gen> \
<design.hum> [--clock-port PORT=CLOCK] [--arrive PORT=TIME] [--require PORT=TIME] \
[--edge-triggered] [--min-delays] [--min-period] [--profile] [--paths N] [--threads N] \
[--scales 50,100,150] [--library LIB.txt] [-o OUT.hum]
  --threads N   worker threads for the slack engine's per-cluster sweeps
                (0 = all available cores; results are identical at any count)
  --profile     arm timing instrumentation and print a phase breakdown
                (parse / shard build / sweep passes / report) after analyze
  gen           hummingbird gen --kind <pipeline|sbox|sram> --cells N \
--seed S [--clocks C] [-o OUT.hum]";

fn load_library(path: Option<&str>) -> Result<Library, CliError> {
    match path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
            hb_io::parse_lib(&text).map_err(|e| CliError::parse(format!("{path}: {e}")))
        }
        None => Ok(sc89()),
    }
}

fn load(path: &str, library: &Library) -> Result<HumFile, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
    hb_io::parse_hum(&text, library).map_err(|e| CliError::parse(format!("{path}: {e}")))
}

fn build_spec(
    opts: &Options,
    design: &Design,
    top: ModuleId,
    clocks: &ClockSet,
    directives: &[hb_io::TimingDirective],
) -> Result<Spec, CliError> {
    let mut spec = Spec::new();
    // File directives first…
    let mut file_clock_ports = false;
    for d in directives {
        match d {
            hb_io::TimingDirective::ClockPort { port, clock } => {
                spec = spec.clock_port(port, clock);
                file_clock_ports = true;
            }
            hb_io::TimingDirective::Arrive { port, edge, offset } => {
                spec = spec.input_arrival(
                    port,
                    EdgeSpec::new(&edge.0, edge.1).at_occurrence(edge.2),
                    *offset,
                );
            }
            hb_io::TimingDirective::Require { port, edge, offset } => {
                spec = spec.output_required(
                    port,
                    EdgeSpec::new(&edge.0, edge.1).at_occurrence(edge.2),
                    *offset,
                );
            }
        }
    }
    // …then command-line overrides / defaults.
    if opts.clock_ports.is_empty() {
        if !file_clock_ports {
            // Default rule: a clock binds the port carrying its own name.
            for (_, clock) in clocks.clocks() {
                if design.module(top).port_by_name(clock.name()).is_some() {
                    spec = spec.clock_port(clock.name(), clock.name());
                }
            }
        }
    } else {
        for (port, clock) in &opts.clock_ports {
            spec = spec.clock_port(port, clock);
        }
    }
    let first_clock = clocks
        .clocks()
        .next()
        .map(|(_, c)| c.name().to_owned())
        .ok_or_else(|| CliError::analysis("the design declares no clocks"))?;
    for (port, offset) in &opts.arrivals {
        spec = spec.input_arrival(port, EdgeSpec::new(&first_clock, Transition::Rise), *offset);
    }
    for (port, offset) in &opts.requireds {
        spec = spec.output_required(port, EdgeSpec::new(&first_clock, Transition::Rise), *offset);
    }
    Ok(spec)
}

/// Proportionally rescales every clock waveform to `pct` percent.
///
/// Every edge of every clock scales through one rational rounding rule
/// (round half up on `ps·pct/100`) — truncating here used to push
/// harmonically related clocks out of ratio and let rise/fall edges
/// land past the truncated period. Rounding keeps related waveforms
/// together whenever the arithmetic allows it; when a percent cannot
/// preserve the original period ratios at picosecond resolution the
/// sweep point is refused instead of silently analysing a different
/// clock system.
fn scale_clocks(clocks: &ClockSet, pct: u32) -> Result<ClockSet, CliError> {
    let scale = |t: Time| Time::from_ps((t.as_ps() * i64::from(pct) + 50) / 100);
    let mut scaled = ClockSet::new();
    let mut first: Option<(String, i64, i64)> = None; // (name, orig, scaled) periods
    for (_, clock) in clocks.clocks() {
        let period = scale(clock.period());
        // Cross-multiply against the first clock: one exact common
        // ratio means every pairwise harmonic ratio survived.
        match &first {
            None => {
                first = Some((
                    clock.name().to_owned(),
                    clock.period().as_ps(),
                    period.as_ps(),
                ))
            }
            Some((name0, orig0, new0)) => {
                let lhs = i128::from(*orig0) * i128::from(period.as_ps());
                let rhs = i128::from(*new0) * i128::from(clock.period().as_ps());
                if lhs != rhs {
                    return Err(CliError::analysis(format!(
                        "scale {pct}%: cannot preserve the harmonic ratio between clocks \
                         {name0:?} and {:?} at picosecond resolution",
                        clock.name()
                    )));
                }
            }
        }
        scaled
            .add_clock(
                clock.name(),
                period,
                scale(clock.rise()),
                scale(clock.fall()),
            )
            .map_err(|e| CliError::analysis(format!("scale {pct}%: {e}")))?;
    }
    Ok(scaled)
}

/// `hummingbird gen`: emit a generated at-scale design as `.hum`.
fn run_gen(args: &[&str], out: &mut impl Write) -> Result<u8, CliError> {
    let mut kind: Option<hb_workloads::GenKind> = None;
    let mut cells: Option<usize> = None;
    let mut seed = 1u64;
    let mut clocks = 4usize;
    let mut output: Option<String> = None;
    let mut library: Option<String> = None;
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .copied()
                .ok_or_else(|| CliError::usage(format!("{what} needs a value\n{USAGE}")))
        };
        match arg {
            "--kind" | "-k" => {
                let v = value("--kind")?;
                kind = Some(hb_workloads::GenKind::parse(v).ok_or_else(|| {
                    CliError::usage(format!("unknown kind {v:?} (pipeline|sbox|sram)"))
                })?);
            }
            "--cells" | "-n" => {
                let v = value("--cells")?;
                cells = Some(v.parse().map_err(|_| {
                    CliError::usage(format!("--cells wants a positive integer, got {v:?}"))
                })?);
            }
            "--seed" | "-s" => {
                let v = value("--seed")?;
                seed = v.parse().map_err(|_| {
                    CliError::usage(format!("--seed wants an unsigned integer, got {v:?}"))
                })?;
            }
            "--clocks" => {
                let v = value("--clocks")?;
                clocks = v.parse().map_err(|_| {
                    CliError::usage(format!("--clocks wants an integer, got {v:?}"))
                })?;
                if !(2..=8).contains(&clocks) {
                    return Err(CliError::usage("--clocks must be between 2 and 8"));
                }
            }
            "-o" | "--output" => output = Some(value("--output")?.to_owned()),
            "--library" => library = Some(value("--library")?.to_owned()),
            other => {
                return Err(CliError::usage(format!(
                    "unexpected argument {other:?}\n{USAGE}"
                )))
            }
        }
    }
    let kind = kind.ok_or_else(|| CliError::usage(format!("gen needs --kind\n{USAGE}")))?;
    let cells = cells.ok_or_else(|| CliError::usage(format!("gen needs --cells\n{USAGE}")))?;
    const MAX_GEN_CELLS: usize = 2_000_000;
    if !(hb_workloads::MIN_GEN_CELLS..=MAX_GEN_CELLS).contains(&cells) {
        return Err(CliError::usage(format!(
            "--cells must be between {} and {MAX_GEN_CELLS}",
            hb_workloads::MIN_GEN_CELLS
        )));
    }
    let lib = load_library(library.as_deref())?;
    let params = hb_workloads::GenParams {
        kind,
        cells,
        seed,
        clocks,
    };
    let start = std::time::Instant::now();
    let workload = hb_workloads::generate(&lib, &params);
    let text = workload.to_hum();
    let gen_seconds = start.elapsed().as_secs_f64();
    let io = |e: std::io::Error| CliError::io(format!("write failed: {e}"));
    match output {
        Some(path) => {
            std::fs::write(&path, &text)
                .map_err(|e| CliError::io(format!("cannot write {path}: {e}")))?;
            let stats = workload.stats();
            writeln!(
                out,
                "generated {} seed {} ({} cells, {} nets, {} clocks) in {:.2}s -> {path}",
                kind.name(),
                seed,
                stats.cells,
                stats.nets,
                clocks,
                gen_seconds,
            )
            .map_err(io)?;
        }
        None => out.write_all(text.as_bytes()).map_err(io)?,
    }
    Ok(0)
}

/// Runs the driver. Returns the process exit code: 0 on success (and
/// timing met, for `analyze`), 1 when the analysis found violations.
///
/// # Errors
///
/// Returns [`CliError`] for usage errors, unreadable or unparsable
/// inputs, and designs outside the analyzer's supported class.
pub fn run(args: &[&str], out: &mut impl Write) -> Result<u8, CliError> {
    match args.first() {
        Some(&"serve") => return daemon::run_serve(&args[1..], out),
        Some(&"query") => return daemon::run_query(&args[1..], out),
        Some(&"flow") => return daemon::run_flow(&args[1..], out),
        Some(&"gen") => return run_gen(&args[1..], out),
        _ => {}
    }
    let opts = parse_args(args)?;
    if opts.profile {
        // Arm before any analysis so spans read the clock; disarmed
        // (the default) they cost one relaxed load.
        hb_obs::arm();
    }
    let library = load_library(opts.library.as_deref())?;
    let parse_start = std::time::Instant::now();
    let file = load(&opts.input, &library)?;
    let parse_seconds = parse_start.elapsed().as_secs_f64();
    let design = file.design;
    let top = design
        .top()
        .ok_or_else(|| CliError::parse("the design has no `top` directive"))?;
    design
        .validate()
        .map_err(|e| CliError::analysis(format!("invalid design: {e}")))?;

    let io = |e: std::io::Error| CliError::io(format!("write failed: {e}"));

    if opts.command == "check" {
        let stats = design.stats(top);
        writeln!(
            out,
            "{}: ok ({} cells, {} nets, depth {})",
            opts.input, stats.cells, stats.nets, stats.depth
        )
        .map_err(io)?;
        return Ok(0);
    }

    let spec = build_spec(&opts, &design, top, &file.clocks, &file.timing)?;
    let options = AnalysisOptions {
        latch_model: if opts.edge_triggered {
            LatchModel::EdgeTriggered
        } else {
            LatchModel::Transparent
        },
        check_min_delays: opts.min_delays,
        threads: opts.threads,
        ..AnalysisOptions::default()
    };

    if opts.command == "resynth" {
        let mut design = design;
        let outcome = hb_resynth::optimize(
            &mut design,
            top,
            &library,
            &file.clocks,
            &spec,
            hb_resynth::ResynthOptions::default(),
        )
        .map_err(|e| CliError::analysis(e.to_string()))?;
        writeln!(
            out,
            "resynthesis: met={} after {} iterations, {} resizes, {} buffers",
            outcome.met, outcome.iterations, outcome.resizes, outcome.buffers
        )
        .map_err(io)?;
        if let Some(path) = &opts.output {
            let text = hb_io::write_hum(&design, &file.clocks);
            std::fs::write(path, text)
                .map_err(|e| CliError::io(format!("cannot write {path}: {e}")))?;
            writeln!(out, "wrote {path}").map_err(io)?;
        }
        return Ok(u8::from(!outcome.met));
    }

    if opts.command == "sweep" {
        writeln!(
            out,
            "{:>8} {:>10} {:>12} {:>6}",
            "scale", "overall", "worst", "ok"
        )
        .map_err(io)?;
        // One resident cache across the whole sweep: consecutive scale
        // points only move the clock-derived seed offsets, so every
        // cluster whose seed signature repeats is reused, not re-swept.
        let mut cache = SlackCache::new();
        let mut all_met = true;
        for &pct in &opts.scales {
            let scaled = scale_clocks(&file.clocks, pct)?;
            let analyzer =
                Analyzer::with_options(&design, top, &library, &scaled, spec.clone(), options)
                    .map_err(|e| CliError::analysis(e.to_string()))?;
            let report = analyzer.analyze_with_cache(&mut cache);
            all_met &= report.ok();
            writeln!(
                out,
                "{:>7}% {:>10} {:>12} {:>6}",
                pct,
                report.overall_period().to_string(),
                report.worst_slack().to_string(),
                if report.ok() { "yes" } else { "no" }
            )
            .map_err(io)?;
        }
        // Worst point wins: any infeasible scale fails the sweep.
        return Ok(u8::from(!all_met));
    }

    let analyzer = Analyzer::with_options(&design, top, &library, &file.clocks, spec, options)
        .map_err(|e| CliError::analysis(e.to_string()))?;

    if opts.command == "analyze" && opts.min_period {
        // One symbolic analysis answers the feasibility question for
        // every grid period at once — no binary search, no re-sweeps.
        let param = analyzer
            .parametric()
            .map_err(|e| CliError::analysis(e.to_string()))?;
        let (lo, hi) = param.domain();
        writeln!(
            out,
            "parametric table: stride {}, domain [{lo}, {hi}], {} regions",
            param.stride(),
            param.region_count()
        )
        .map_err(io)?;
        return match param.min_feasible_period() {
            Some(p) => {
                writeln!(
                    out,
                    "min feasible period: {p} (nominal {})",
                    param.nominal_period()
                )
                .map_err(io)?;
                Ok(0)
            }
            None => {
                writeln!(out, "no feasible period within [{lo}, {hi}]").map_err(io)?;
                Ok(1)
            }
        };
    }

    if opts.command == "passes" {
        write!(out, "{}", hb_clock::render_waveforms(&file.clocks, 64)).map_err(io)?;
        write!(
            out,
            "{}",
            hb_clock::render_markers(&file.clocks, 64, analyzer.pass_starts(), "window starts")
        )
        .map_err(io)?;
        let stats = analyzer.prep_stats();
        writeln!(
            out,
            "overall period {}: {} active clusters, {} requirements, \
             {} cluster passes total (max {} per cluster), {} global windows",
            analyzer.overall_period(),
            stats.active_clusters,
            stats.requirements,
            stats.total_cluster_passes,
            stats.max_cluster_passes,
            stats.global_passes
        )
        .map_err(io)?;
        for (i, start) in analyzer.pass_starts().iter().enumerate() {
            writeln!(out, "pass {i}: window opens at {start}").map_err(io)?;
        }
        return Ok(0);
    }

    let report = if opts.command == "constraints" {
        analyzer.generate_constraints()
    } else {
        analyzer.analyze()
    };
    let report_start = std::time::Instant::now();
    writeln!(out, "{report}").map_err(io)?;
    // Slack distribution: one bar per nanosecond bucket.
    writeln!(out, "terminal slack distribution:").map_err(io)?;
    for (lo, n) in report.slack_histogram(Time::from_ns(1), 12) {
        if n > 0 {
            writeln!(
                out,
                "  {:>10} .. | {}",
                lo.to_string(),
                "#".repeat(n.min(60))
            )
            .map_err(io)?;
        }
    }
    for path in report.slow_paths().iter().take(opts.max_paths) {
        writeln!(
            out,
            "slow path into {} (slack {}):",
            path.endpoint, path.slack
        )
        .map_err(io)?;
        for step in &path.steps {
            match &step.through {
                Some(inst) => writeln!(out, "    -> {} via {} at {}", step.net, inst, step.time)
                    .map_err(io)?,
                None => writeln!(out, "    from {} at {}", step.net, step.time).map_err(io)?,
            }
        }
    }
    for v in report.min_delay_violations() {
        writeln!(out, "{v}").map_err(io)?;
    }
    if opts.command == "constraints" {
        let constraints = report.constraints().expect("generated");
        writeln!(out, "net constraints (ready / required):").map_err(io)?;
        let module = design.module(top);
        for (net, n) in module.nets() {
            if let (Some(r), Some(q)) = (constraints.ready_at(net), constraints.required_at(net)) {
                writeln!(out, "  {:<24} {} / {}", n.name(), r, q).map_err(io)?;
            }
        }
    }
    if opts.profile {
        let report_seconds = report_start.elapsed().as_secs_f64();
        writeln!(out, "profile (wall seconds):").map_err(io)?;
        writeln!(out, "  parse        {parse_seconds:>10.6}").map_err(io)?;
        writeln!(out, "  shard build  {:>10.6}", report.prep_seconds()).map_err(io)?;
        writeln!(out, "  sweep passes {:>10.6}", report.analysis_seconds()).map_err(io)?;
        writeln!(out, "  report       {report_seconds:>10.6}").map_err(io)?;
        // Per-pass sweep-item latency, from the armed engine histograms
        // (registration is idempotent, so this reads the same series
        // the engine recorded into).
        for pass in 0..analyzer.pass_starts().len() {
            let h = hb_obs::global().histogram_with(
                "hb_engine_sweep_nanoseconds",
                "duration of one (cluster, pass) sweep item, by global pass",
                &[("pass", &pass.to_string())],
            );
            if h.count() > 0 {
                writeln!(
                    out,
                    "  pass {pass}: {} sweeps, p50 {} ns, p95 {} ns, max {} ns",
                    h.count(),
                    h.quantile(0.5),
                    h.quantile(0.95),
                    h.max()
                )
                .map_err(io)?;
            }
        }
    }
    Ok(u8::from(!report.ok()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_errors() {
        let mut buf = Vec::new();
        assert!(run(&[], &mut buf).is_err());
        assert!(run(&["frobnicate", "x.hum"], &mut buf).is_err());
        assert!(run(&["analyze"], &mut buf).is_err());
        assert!(run(&["analyze", "x.hum", "--paths", "NaN"], &mut buf).is_err());
        assert!(run(&["analyze", "/nonexistent/x.hum"], &mut buf).is_err());
    }

    #[test]
    fn option_parsing() {
        let o = parse_args(&[
            "analyze",
            "d.hum",
            "--clock-port",
            "ck=phi1",
            "--arrive",
            "a=2ns",
            "--require",
            "y=0ps",
            "--edge-triggered",
            "--min-delays",
            "--paths",
            "9",
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(o.command, "analyze");
        assert_eq!(o.input, "d.hum");
        assert_eq!(o.clock_ports, vec![("ck".into(), "phi1".into())]);
        assert_eq!(o.arrivals, vec![("a".into(), Time::from_ns(2))]);
        assert_eq!(o.threads, 4);
        assert_eq!(o.requireds, vec![("y".into(), Time::ZERO)]);
        assert!(o.edge_triggered && o.min_delays);
        assert_eq!(o.max_paths, 9);
    }
}
