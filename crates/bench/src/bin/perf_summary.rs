//! Machine-readable performance summary of the slack engines.
//!
//! Runs the Table 1 style workloads through the reference (dense,
//! sequential) engine and the sharded engine at several thread counts,
//! and writes `BENCH_perf.json` with the measured times, the cache
//! reuse counters and the derived speedups. Run with
//! `cargo run --release -p hb-bench --bin perf_summary`.

use std::fmt::Write as _;
use std::time::Instant;

use hb_cells::sc89;
use hb_workloads::{
    des_like, generate, random_pipeline, GenKind, GenParams, PipelineParams, Workload,
};
use hummingbird::{AnalysisOptions, Analyzer, EngineKind, TimingReport};

/// The generator scaling curve: one row per (kind, cells) point.
const SCALING_POINTS: [(&str, usize); 3] =
    [("sram", 10_000), ("sram", 100_000), ("sram", 1_000_000)];

const WARMUP: usize = 1;
const ITERS: usize = 7;

struct EngineRun {
    label: String,
    threads: usize,
    seconds: f64,
    report: TimingReport,
}

fn median_time(mut f: impl FnMut() -> TimingReport) -> (f64, TimingReport) {
    for _ in 0..WARMUP {
        f();
    }
    let mut samples = Vec::with_capacity(ITERS);
    let mut last = None;
    for _ in 0..ITERS {
        let start = Instant::now();
        let report = f();
        samples.push(start.elapsed().as_secs_f64());
        last = Some(report);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    (samples[samples.len() / 2], last.expect("ITERS > 0"))
}

fn run_engines(w: &Workload, lib: &hb_cells::Library) -> (f64, usize, Vec<EngineRun>) {
    let mut runs = Vec::new();
    let mut prep_seconds = 0.0;
    let mut cells = 0;
    let configs: Vec<(String, AnalysisOptions)> = [
        (
            "reference".to_string(),
            AnalysisOptions {
                engine: EngineKind::Reference,
                threads: 1,
                ..AnalysisOptions::default()
            },
        ),
        (
            "sharded-1".to_string(),
            AnalysisOptions {
                threads: 1,
                ..AnalysisOptions::default()
            },
        ),
        (
            "sharded-8".to_string(),
            AnalysisOptions {
                threads: 8,
                ..AnalysisOptions::default()
            },
        ),
    ]
    .into_iter()
    .collect();
    for (label, options) in configs {
        let analyzer =
            Analyzer::with_options(&w.design, w.module, lib, &w.clocks, w.spec.clone(), options)
                .expect("conforming workload");
        if label == "sharded-1" {
            prep_seconds = analyzer.prep_seconds();
            cells = w.stats().cells;
        }
        let (seconds, report) = median_time(|| analyzer.analyze());
        runs.push(EngineRun {
            label,
            threads: options.threads,
            seconds,
            report,
        });
    }
    (prep_seconds, cells, runs)
}

/// Median analyze() time with the observability layer disarmed, then
/// armed, on the single-thread sharded engine. The ratio is the whole
/// cost of metrics: counters always tally, so arming only adds the
/// clock reads in the span timers.
fn metrics_overhead(w: &Workload, lib: &hb_cells::Library) -> (f64, f64) {
    let analyzer = Analyzer::with_options(
        &w.design,
        w.module,
        lib,
        &w.clocks,
        w.spec.clone(),
        AnalysisOptions {
            threads: 1,
            ..AnalysisOptions::default()
        },
    )
    .expect("conforming workload");
    hb_obs::disarm();
    let (disarmed, _) = median_time(|| analyzer.analyze());
    hb_obs::arm();
    let (armed, _) = median_time(|| analyzer.analyze());
    hb_obs::disarm();
    (disarmed, armed)
}

/// Peak resident set of this process so far, from `/proc/self/status`
/// (0 where unavailable).
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")
                    .and_then(|v| v.trim().trim_end_matches("kB").trim().parse::<u64>().ok())
            })
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Measures one scaling point and prints its JSON row. Runs in a child
/// process (`--scaling-point kind:cells`) so each point's peak RSS is
/// its own, not the high-water mark of whichever point ran first.
fn scaling_point(kind: &str, cells: usize) {
    let lib = sc89();
    let gk = GenKind::parse(kind).expect("known generator kind");
    let start = Instant::now();
    let w = generate(&lib, &GenParams::new(gk, cells, 1));
    let gen_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let analyzer = Analyzer::with_options(
        &w.design,
        w.module,
        &lib,
        &w.clocks,
        w.spec.clone(),
        AnalysisOptions {
            threads: 1,
            ..AnalysisOptions::default()
        },
    )
    .expect("generated designs conform");
    let prep_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let report = analyzer.analyze();
    let analyze_seconds = start.elapsed().as_secs_f64();
    assert!(
        !report.terminal_slacks().is_empty(),
        "scaling run must constrain terminals"
    );
    println!(
        "{{\"kind\": \"{kind}\", \"cells\": {cells}, \"gen_seconds\": {gen_seconds:.6}, \
         \"prep_seconds\": {prep_seconds:.6}, \"analyze_seconds\": {analyze_seconds:.6}, \
         \"peak_rss_bytes\": {}}}",
        peak_rss_bytes()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--scaling-point") {
        let spec = args.get(i + 1).expect("--scaling-point takes kind:cells");
        let (kind, cells) = spec.split_once(':').expect("kind:cells");
        scaling_point(kind, cells.parse().expect("numeric cell count"));
        return;
    }

    let lib = sc89();
    let workloads = [
        des_like(&lib, 1989),
        random_pipeline(
            &lib,
            PipelineParams {
                stages: 6,
                width: 16,
                gates_per_stage: 600,
                transparent: true,
                period_ns: 30,
                seed: 1203,
                imbalance_pct: 40,
            },
        ),
    ];

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");

    // Generator scaling curve, one child process per point.
    json.push_str("  \"scaling\": [\n");
    let exe = std::env::current_exe().expect("own path");
    for (i, (kind, cells)) in SCALING_POINTS.iter().enumerate() {
        let out = std::process::Command::new(&exe)
            .arg("--scaling-point")
            .arg(format!("{kind}:{cells}"))
            .output()
            .expect("spawn scaling child");
        assert!(
            out.status.success(),
            "scaling point {kind}:{cells} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let row = String::from_utf8_lossy(&out.stdout).trim().to_string();
        let _ = writeln!(
            json,
            "    {row}{}",
            if i + 1 < SCALING_POINTS.len() {
                ","
            } else {
                ""
            }
        );
        eprintln!("scaling {kind}:{cells}: {row}");
    }
    json.push_str("  ],\n");

    json.push_str("  \"workloads\": [\n");
    for (wi, w) in workloads.iter().enumerate() {
        let (prep_seconds, cells, runs) = run_engines(w, &lib);
        let t1 = runs
            .iter()
            .find(|r| r.label == "sharded-1")
            .expect("configured")
            .seconds;
        let reference = runs
            .iter()
            .find(|r| r.label == "reference")
            .expect("configured")
            .seconds;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"workload\": \"{}\",", w.name);
        let _ = writeln!(json, "      \"cells\": {cells},");
        let _ = writeln!(json, "      \"prep_seconds\": {prep_seconds:.6},");
        let _ = writeln!(json, "      \"engines\": [");
        for (i, r) in runs.iter().enumerate() {
            let stats = r.report.engine_stats();
            let _ = writeln!(json, "        {{");
            let _ = writeln!(json, "          \"engine\": \"{}\",", r.label);
            let _ = writeln!(json, "          \"threads\": {},", r.threads);
            let _ = writeln!(json, "          \"analysis_seconds\": {:.6},", r.seconds);
            let _ = writeln!(
                json,
                "          \"speedup_vs_1_thread\": {:.3},",
                t1 / r.seconds
            );
            let _ = writeln!(
                json,
                "          \"speedup_vs_reference\": {:.3},",
                reference / r.seconds
            );
            let _ = writeln!(
                json,
                "          \"items_scheduled\": {},",
                stats.items_scheduled
            );
            let _ = writeln!(json, "          \"items_reused\": {}", stats.items_reused);
            let _ = writeln!(
                json,
                "        }}{}",
                if i + 1 < runs.len() { "," } else { "" }
            );
            eprintln!(
                "{}/{}: {:.3} ms ({} threads, {}/{} items from cache)",
                w.name,
                r.label,
                r.seconds * 1e3,
                r.threads,
                stats.items_reused,
                stats.items_scheduled
            );
        }
        let _ = writeln!(json, "      ],");
        let (disarmed, armed) = metrics_overhead(w, &lib);
        let _ = writeln!(json, "      \"metrics_overhead\": {{");
        let _ = writeln!(json, "        \"disarmed_seconds\": {disarmed:.6},");
        let _ = writeln!(json, "        \"armed_seconds\": {armed:.6},");
        let _ = writeln!(
            json,
            "        \"armed_over_disarmed\": {:.4}",
            armed / disarmed
        );
        let _ = writeln!(json, "      }}");
        eprintln!(
            "{}/metrics-overhead: {:.3} ms disarmed, {:.3} ms armed ({:+.2}%)",
            w.name,
            disarmed * 1e3,
            armed * 1e3,
            (armed / disarmed - 1.0) * 100.0
        );
        let _ = writeln!(
            json,
            "    }}{}",
            if wi + 1 < workloads.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_perf.json", &json).expect("write BENCH_perf.json");
    println!("{json}");
}
