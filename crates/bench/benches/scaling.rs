//! Scaling study: analysis cost vs design size (the claim behind
//! Table 1's "very fast": block analysis is a constant number of
//! topological sweeps, so cost grows linearly in cells).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hb_cells::sc89;
use hb_workloads::{random_pipeline, PipelineParams};
use hummingbird::Analyzer;

fn bench_scaling(c: &mut Criterion) {
    let lib = sc89();
    let mut group = c.benchmark_group("scaling/analysis");
    group.sample_size(10);
    for gates_per_stage in [125usize, 250, 500, 1000, 2000] {
        let w = random_pipeline(
            &lib,
            PipelineParams {
                stages: 4,
                width: 16,
                gates_per_stage,
                transparent: false,
                period_ns: 200,
                seed: 77,
                imbalance_pct: 0,
            },
        );
        let cells = w.stats().cells;
        let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
            .expect("conforming workload");
        group.throughput(Throughput::Elements(cells as u64));
        group.bench_with_input(BenchmarkId::from_parameter(cells), &analyzer, |b, a| {
            b.iter(|| a.analyze())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
