//! Chaos suite: the daemon under injected faults.
//!
//! Three invariants, per ISSUE and DESIGN.md §7:
//!
//! 1. the daemon never hangs past its deadlines (slowloris frames are
//!    cut off, idle connections reaped, overload shed with `busy`);
//! 2. it never answers `poisoned` — panics are isolated or, when one
//!    escapes and genuinely poisons the session lock, the next writer
//!    clears the poison and recovers;
//! 3. after a recovery, analyze/slack answers are **bit-identical** to
//!    a cold run over the identically edited design.
//!
//! Fault plans are seeded, so every failure here reproduces from its
//! seed. `check.sh` runs the suite under three fixed seeds plus one
//! fresh `HB_CHAOS_SEED` and prints the seed on failure.
//!
//! Several tests install process-global fault plans or depend on fault
//! budgets shared through a server; everything serialises on one
//! static mutex so parallel test threads cannot cross-fire.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use hb_cells::{sc89, Binding, Library};
use hb_fault::{install_global, Fault, FaultPlan, FaultStream};
use hb_io::{Frame, FrameReader, ProtoError};
use hb_netlist::{Design, InstRef, ModuleId};
use hb_server::{
    directives_from_spec, serve_stream, Client, Server, ServerOptions, Session, MAX_LOAD_BYTES,
    MAX_WORST_PATHS,
};
use hb_workloads::{random_pipeline, PipelineParams};

static CHAOS: Mutex<()> = Mutex::new(());

fn serialised() -> MutexGuard<'static, ()> {
    // The whole suite runs with metrics armed: fault paths must hold
    // their invariants while the observability layer is live, not just
    // in the quiet disarmed configuration. (TCP tests arm anyway via
    // `Server::run`; this covers the Session/serve_stream tests too.)
    hb_obs::arm();
    // A panicking chaos test must not wedge the rest of the suite.
    CHAOS.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The seed matrix: three fixed seeds for reproducibility plus an
/// optional fresh one from the environment (`check.sh` passes a random
/// `HB_CHAOS_SEED` and prints it on failure).
fn seeds() -> Vec<u64> {
    let mut seeds = vec![0xDAC89, 1, 2];
    if let Some(seed) = std::env::var("HB_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        seeds.push(seed);
    }
    seeds
}

/// The first leaf instance with drive headroom in its cell family —
/// a deterministic, always-applicable resize target.
fn resizable_instance(design: &Design, module: ModuleId, lib: &Library) -> String {
    let binding = Binding::new(design, lib);
    for (_, inst) in design.module(module).instances() {
        let InstRef::Leaf(leaf) = inst.target() else {
            continue;
        };
        let Some(cell) = binding.cell_for_leaf(leaf) else {
            continue;
        };
        let variants = lib.family_variants(lib.cell(cell).family());
        let pos = variants.iter().position(|&v| v == cell).unwrap();
        if pos + 1 < variants.len() {
            return inst.name().to_owned();
        }
    }
    panic!("workload has no resizable instance");
}

/// A transparent-latch pipeline with a known resizable instance.
fn pipeline() -> (Library, String, String) {
    let lib = sc89();
    let w = random_pipeline(
        &lib,
        PipelineParams {
            stages: 4,
            width: 8,
            gates_per_stage: 60,
            transparent: true,
            period_ns: 14,
            seed: 21,
            imbalance_pct: 30,
        },
    );
    let text = hb_io::write_hum_with_timing(&w.design, &w.clocks, &directives_from_spec(&w.spec));
    let inst = resizable_instance(&w.design, w.module, &lib);
    (lib, text, inst)
}

fn start_server(
    lib: Library,
    options: ServerOptions,
) -> (
    std::net::SocketAddr,
    thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind("127.0.0.1:0", lib, options).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn eco_resize(inst: &str) -> Frame {
    Frame::new("eco")
        .arg("op", "resize")
        .arg("inst", inst)
        .arg("steps", 1)
}

/// Invariant 2 + 3, panic-isolation flavour: an `eco` that panics
/// mid-mutation is answered with a structured `internal` error, the
/// session is rebuilt from the journal, and after re-issuing the ECO
/// every answer is bit-identical to a cold session over the same edit.
#[test]
fn eco_panic_recovers_bit_identical_to_cold() {
    let _guard = serialised();
    let (lib, text, inst) = pipeline();
    let faults = FaultPlan::seeded(0xDAC89).armed(hb_fault::SESSION_ECO_PANIC, Fault::once());
    let options = ServerOptions {
        faults,
        ..ServerOptions::default()
    };
    let (addr, server) = start_server(lib.clone(), options);
    let mut client = Client::connect(addr).unwrap();

    let reply = client
        .request(&Frame::new("load").with_payload(text.clone()))
        .unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    let reply = client.request(&Frame::new("analyze")).unwrap();
    assert_eq!(reply.verb, "ok");

    // The injected panic: isolated, recovered, never `poisoned`.
    let reply = client.request(&eco_resize(&inst)).unwrap();
    assert_eq!(reply.verb, "error", "{:?}", reply.payload);
    assert_eq!(reply.get("code"), Some("internal"));
    assert_eq!(reply.get("recovered"), Some("1"), "{:?}", reply.payload);

    // The session survived on the same connection and the rolled-back
    // ECO can be re-issued; the fault budget is spent so it applies.
    let warm_eco = client.request(&eco_resize(&inst)).unwrap();
    assert_eq!(warm_eco.verb, "ok", "{:?}", warm_eco.payload);
    let warm_paths = client
        .request(&Frame::new("worst-paths").arg("k", 20))
        .unwrap();
    assert_eq!(warm_paths.verb, "ok");
    let warm_dump = client.request(&Frame::new("dump")).unwrap();
    assert_eq!(warm_dump.verb, "ok");

    // Cold twin: fresh session, same text, same single ECO.
    let mut cold = Session::new(lib);
    assert_eq!(
        cold.handle(&Frame::new("load").with_payload(text)).verb,
        "ok"
    );
    assert_eq!(cold.handle(&Frame::new("analyze")).verb, "ok");
    let cold_eco = cold.handle(&eco_resize(&inst));
    assert_eq!(cold_eco.verb, "ok", "{:?}", cold_eco.payload);
    let cold_paths = cold.handle(&Frame::new("worst-paths").arg("k", 20));
    let cold_dump = cold.handle(&Frame::new("dump"));

    // Bit-identical: design text, verdict, worst slack, period, paths.
    assert_eq!(warm_dump.payload, cold_dump.payload, "designs diverged");
    for key in ["ok", "worst", "period"] {
        assert_eq!(warm_eco.get(key), cold_eco.get(key), "eco {key} diverged");
    }
    assert_eq!(warm_paths.payload, cold_paths.payload, "paths diverged");

    client.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}

/// Panic isolation deep in the engine (global fault plan), through the
/// stdio transport: the analyze that panics mid-sweep earns a
/// recovered `internal` error and the next analyze matches a clean
/// session's answer.
#[test]
fn engine_sweep_panic_is_isolated_and_recovered() {
    let _guard = serialised();
    let (lib, text, _) = pipeline();

    install_global(FaultPlan::seeded(7).armed(hb_fault::ENGINE_SWEEP_PANIC, Fault::once()));
    let mut wire = Vec::new();
    for f in [
        Frame::new("load").with_payload(text.clone()),
        Frame::new("analyze"),
        Frame::new("analyze"),
        Frame::new("shutdown"),
    ] {
        wire.extend_from_slice(f.encode().as_bytes());
    }
    let mut out = Vec::new();
    let served = serve_stream(lib.clone(), std::io::Cursor::new(wire), &mut out);
    install_global(FaultPlan::none());
    served.unwrap();

    let mut replies = FrameReader::new(std::io::Cursor::new(out));
    let load = replies.read_frame().unwrap().unwrap();
    assert_eq!(load.verb, "ok", "{:?}", load.payload);
    let crashed = replies.read_frame().unwrap().unwrap();
    assert_eq!(crashed.verb, "error");
    assert_eq!(crashed.get("code"), Some("internal"));
    assert_eq!(crashed.get("recovered"), Some("1"), "{:?}", crashed.payload);
    let retried = replies.read_frame().unwrap().unwrap();
    assert_eq!(retried.verb, "ok", "{:?}", retried.payload);

    let mut clean = Session::new(lib);
    clean.handle(&Frame::new("load").with_payload(text));
    let baseline = clean.handle(&Frame::new("analyze"));
    assert_eq!(retried.get("worst"), baseline.get("worst"));
    assert_eq!(retried.get("period"), baseline.get("period"));
}

/// Invariant 1+codec: a client whose transport misbehaves on a seeded
/// schedule (short reads/writes, `Interrupted`, `WouldBlock`) still
/// gets byte-identical answers — the resumable frame reader loses no
/// partial progress over a real socket.
#[test]
fn faulted_client_transport_decodes_identically() {
    let _guard = serialised();
    let (lib, text, _) = pipeline();
    let (addr, server) = start_server(lib, ServerOptions::default());

    // Baseline from a clean client.
    let mut clean = Client::connect(addr).unwrap();
    let requests = [
        Frame::new("hello"),
        Frame::new("load").with_payload(text),
        Frame::new("analyze"),
        Frame::new("worst-paths").arg("k", 5),
        Frame::new("stats"),
    ];
    let baseline: Vec<Frame> = requests.iter().map(|f| clean.request(f).unwrap()).collect();

    for seed in seeds() {
        let plan = FaultPlan::seeded(seed)
            .armed(hb_fault::IO_READ_SHORT, Fault::with_rate(40))
            .armed(hb_fault::IO_READ_ERR, Fault::with_rate(25))
            .armed(hb_fault::IO_WRITE_SHORT, Fault::with_rate(40))
            .armed(hb_fault::IO_WRITE_ERR, Fault::with_rate(20));
        let stream = TcpStream::connect(addr).unwrap();
        let mut writes =
            FaultStream::new(std::io::empty(), stream.try_clone().unwrap(), plan.clone());
        let mut reads =
            FrameReader::new(std::io::BufReader::new(FaultStream::reader(stream, plan)));
        for (req, want) in requests.iter().zip(&baseline) {
            // `write_all` retries Interrupted and loops short writes.
            writes.write_all(req.encode().as_bytes()).unwrap();
            writes.flush().unwrap();
            let got = loop {
                match reads.read_frame() {
                    Ok(Some(frame)) => break frame,
                    Ok(None) => panic!("seed {seed:#x}: connection closed mid-matrix"),
                    Err(ProtoError::Io(e))
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue; // injected; partial frame is retained
                    }
                    Err(e) => panic!("seed {seed:#x}: {e}"),
                }
            };
            assert_eq!(got.verb, want.verb, "seed {seed:#x}: verb diverged");
            assert_eq!(
                got.payload, want.payload,
                "seed {seed:#x}: payload diverged on `{}`",
                req.verb
            );
            for key in ["ok", "worst", "period", "clocks", "server"] {
                assert_eq!(got.get(key), want.get(key), "seed {seed:#x}: {key}");
            }
        }
    }

    clean.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}

/// Invariant 1: a slowloris peer dripping a frame one byte at a time
/// is answered `error code=timeout` and cut off at the frame deadline;
/// a silent peer is reaped at the idle timeout. Neither stalls the
/// daemon for other clients.
#[test]
fn slowloris_and_idle_connections_are_reaped() {
    let _guard = serialised();
    let (lib, _, _) = pipeline();
    let options = ServerOptions {
        frame_deadline: Duration::from_millis(300),
        idle_timeout: Duration::from_millis(1200),
        ..ServerOptions::default()
    };
    let (addr, server) = start_server(lib, options);

    // Slowloris: drip an unterminated header forever.
    let start = Instant::now();
    let drip = TcpStream::connect(addr).unwrap();
    let mut replies = FrameReader::new(std::io::BufReader::new(drip.try_clone().unwrap()));
    let feeder = thread::spawn(move || {
        let mut drip = &drip;
        for byte in std::iter::repeat_n(b'a', 200) {
            if drip.write_all(&[byte]).is_err() {
                return; // server cut us off
            }
            thread::sleep(Duration::from_millis(40));
        }
    });
    let reply = replies.read_frame().unwrap().expect("a timeout reply");
    assert_eq!(reply.verb, "error");
    assert_eq!(reply.get("code"), Some("timeout"));
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "frame deadline not enforced: {:?}",
        start.elapsed()
    );
    assert!(replies.read_frame().unwrap().is_none(), "must be cut off");
    feeder.join().unwrap();

    // Idle: connect, say nothing, get reaped.
    let start = Instant::now();
    let idle = TcpStream::connect(addr).unwrap();
    let mut replies = FrameReader::new(std::io::BufReader::new(idle));
    assert!(replies.read_frame().unwrap().is_none(), "reaped with EOF");
    let elapsed = start.elapsed();
    assert!(
        elapsed >= Duration::from_millis(1000) && elapsed < Duration::from_secs(5),
        "idle reaper fired at {elapsed:?}, expected ~1.2s"
    );

    // The daemon itself never stalled.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.request(&Frame::new("hello")).unwrap().verb, "ok");
    client.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}

/// Invariant 1, overload flavour: connections past the cap are shed
/// with `busy retry_after_ms=N` instead of queueing, and the client
/// backoff turns the shed into a delayed success once a slot frees.
#[test]
fn overload_is_shed_and_backoff_recovers() {
    let _guard = serialised();
    let (lib, _, _) = pipeline();
    let options = ServerOptions {
        max_connections: 1,
        retry_after_ms: 50,
        ..ServerOptions::default()
    };
    let (addr, server) = start_server(lib, options);

    let mut holder = Client::connect(addr).unwrap();
    assert_eq!(holder.request(&Frame::new("hello")).unwrap().verb, "ok");

    // Over the cap: an immediate structured shed, then EOF.
    let shed = TcpStream::connect(addr).unwrap();
    let mut replies = FrameReader::new(std::io::BufReader::new(shed));
    let reply = replies.read_frame().unwrap().expect("a shed reply");
    assert_eq!(reply.verb, "error");
    assert_eq!(reply.get("code"), Some("busy"));
    assert_eq!(reply.get("retry_after_ms"), Some("50"));
    assert!(replies.read_frame().unwrap().is_none());

    // Free the slot shortly; the backoff client must get through.
    let release = thread::spawn(move || {
        thread::sleep(Duration::from_millis(300));
        drop(holder);
    });
    let reply = Client::request_with_backoff(addr, &Frame::new("stats"), 8).unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    release.join().unwrap();

    let reply = Client::request_with_backoff(addr, &Frame::new("shutdown"), 8).unwrap();
    assert_eq!(reply.verb, "ok");
    server.join().unwrap().unwrap();
}

/// Invariant 2, poisoned-lock flavour: `net.unwind.escape` lets an
/// injected ECO panic escape the isolation, killing the worker thread
/// and genuinely poisoning the session lock. The next writer claims
/// the guard, clears the poison and recovers from the journal — the
/// daemon never answers `poisoned` and is not bricked.
#[test]
fn escaped_panic_poisons_lock_then_recovers() {
    let _guard = serialised();
    let (lib, text, inst) = pipeline();
    // Write-path requests run load(1), analyze(2), eco(3): let the
    // third skip `catch_unwind` and panic inside the ECO.
    let faults = FaultPlan::seeded(3)
        .armed(hb_fault::NET_UNWIND_ESCAPE, Fault::nth(3))
        .armed(hb_fault::SESSION_ECO_PANIC, Fault::once());
    let options = ServerOptions {
        faults,
        ..ServerOptions::default()
    };
    let (addr, server) = start_server(lib, options);

    let mut client = Client::connect(addr).unwrap();
    assert_eq!(
        client
            .request(&Frame::new("load").with_payload(text))
            .unwrap()
            .verb,
        "ok"
    );
    let before = client.request(&Frame::new("analyze")).unwrap();
    assert_eq!(before.verb, "ok");

    // The escaped panic kills this connection without a reply.
    assert!(
        client.request(&eco_resize(&inst)).is_err(),
        "the unguarded panic must kill the connection"
    );

    // A fresh connection finds a recovered session, never `poisoned`.
    let mut fresh = Client::connect(addr).unwrap();
    let stats = fresh.request(&Frame::new("stats")).unwrap();
    assert_eq!(stats.verb, "ok", "{:?}", stats.payload);
    let after = fresh.request(&Frame::new("analyze")).unwrap();
    assert_eq!(after.verb, "ok", "{:?}", after.payload);
    // The half-applied ECO was rolled back to the journaled state.
    assert_eq!(after.get("worst"), before.get("worst"));
    assert_eq!(after.get("period"), before.get("period"));

    fresh.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}

/// Satellite: hostile request sizes earn `error code=limit`, not
/// unbounded allocation or formatting work.
#[test]
fn oversized_requests_hit_structured_limits() {
    let (lib, text, _) = pipeline();
    let mut session = Session::new(lib);
    assert_eq!(
        session.handle(&Frame::new("load").with_payload(text)).verb,
        "ok"
    );
    assert_eq!(session.handle(&Frame::new("analyze")).verb, "ok");

    let reply = session.handle(&Frame::new("worst-paths").arg("k", 4_000_000_000u64));
    assert_eq!(reply.verb, "error");
    assert_eq!(reply.get("code"), Some("limit"), "{:?}", reply.payload);
    const { assert!(MAX_WORST_PATHS < 4_000_000_000) };

    let huge = "x".repeat(MAX_LOAD_BYTES + 1);
    let reply = session.handle(&Frame::new("load").with_payload(huge));
    assert_eq!(reply.verb, "error");
    assert_eq!(reply.get("code"), Some("limit"), "{:?}", reply.payload);

    // The resident design survived the rejected load.
    assert_eq!(session.handle(&Frame::new("stats")).get("loads"), Some("1"));
}

/// Invariant 2+3, failover flavour: a primary takes an injected ECO
/// panic mid-flight (rolled back, recovered, never journaled), a warm
/// standby shadows it over journal-streaming replication, the primary
/// is then killed outright, and the promoted standby continues the
/// flow — with every answer bit-identical to one uninterrupted
/// session over the same edits, masking only the wall-clock
/// `seconds=` argument.
#[test]
fn failover_mid_eco_matches_uninterrupted_run() {
    let _guard = serialised();
    let (lib, text, inst) = pipeline();
    let faults = FaultPlan::seeded(0xDAC89).armed(hb_fault::SESSION_ECO_PANIC, Fault::once());
    let (primary, primary_handle) = start_server(
        lib.clone(),
        ServerOptions {
            faults,
            ..ServerOptions::default()
        },
    );
    let (standby, standby_handle) = start_server(
        lib.clone(),
        ServerOptions {
            standby_of: Some(primary.to_string()),
            sync_interval: Duration::from_millis(25),
            promote_after: 3,
            ..ServerOptions::default()
        },
    );
    let dut = |f: Frame| f.arg("design", "dut");
    // A real net of the workload, picked deterministically, for the
    // post-failover scale-net edit.
    let parsed = hb_io::parse_hum(&text, &lib).unwrap();
    let net = parsed
        .design
        .module(parsed.design.top().unwrap())
        .nets()
        .map(|(_, n)| n.name().to_owned())
        .next()
        .unwrap();
    let scale = || {
        Frame::new("eco")
            .arg("op", "scale-net")
            .arg("net", &net)
            .arg("percent", 120)
    };

    let mut client = Client::connect(primary).unwrap();
    assert_eq!(
        client
            .request(&Frame::new("open").arg("design", "dut"))
            .unwrap()
            .verb,
        "ok"
    );
    assert_eq!(
        client
            .request(&dut(Frame::new("load").with_payload(text.clone())))
            .unwrap()
            .verb,
        "ok"
    );
    assert_eq!(
        client.request(&dut(Frame::new("analyze"))).unwrap().verb,
        "ok"
    );

    // The chaos: the ECO panics mid-mutation on the primary. It is
    // rolled back and — crucially for the standby — never journaled,
    // so the shadow only ever sees acknowledged state.
    let reply = client.request(&dut(eco_resize(&inst))).unwrap();
    assert_eq!(reply.verb, "error", "{:?}", reply.payload);
    assert_eq!(reply.get("code"), Some("internal"));
    assert_eq!(reply.get("recovered"), Some("1"), "{:?}", reply.payload);
    // Re-issued with the fault budget spent, it applies.
    assert_eq!(client.request(&dut(eco_resize(&inst))).unwrap().verb, "ok");

    // Wait for the standby to report the primary's exact fingerprint.
    let fp_of = |client: &mut Client| {
        let reply = client.request(&Frame::new("designs")).unwrap();
        reply
            .payload
            .as_deref()
            .unwrap_or("")
            .lines()
            .find_map(|l| {
                let mut parts = l.split_whitespace();
                (parts.next() == Some("dut")).then(|| {
                    parts
                        .find_map(|p| p.strip_prefix("fp="))
                        .unwrap()
                        .to_owned()
                })
            })
    };
    let want_fp = fp_of(&mut client).expect("dut on the primary");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut shadow = Client::connect(standby).unwrap();
        if fp_of(&mut shadow).as_deref() == Some(want_fp.as_str()) {
            break;
        }
        assert!(Instant::now() < deadline, "standby never caught up");
        thread::sleep(Duration::from_millis(25));
    }

    // Kill the primary outright and let the standby promote (until it
    // does, its own writes stay fenced).
    client.request(&Frame::new("shutdown")).unwrap();
    primary_handle.join().unwrap().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut shadow = Client::connect(standby).unwrap();
        if shadow.request(&Frame::new("stats")).unwrap().get("role") == Some("primary") {
            break;
        }
        assert!(Instant::now() < deadline, "standby never promoted");
        thread::sleep(Duration::from_millis(25));
    }

    // The flow continues against the promoted standby.
    let mut shadow = Client::connect(standby).unwrap();
    let warm_eco = shadow.request(&dut(scale())).unwrap();
    assert_eq!(warm_eco.verb, "ok", "{:?}", warm_eco.payload);
    let warm_analyze = shadow.request(&dut(Frame::new("analyze"))).unwrap();
    let warm_slack = shadow
        .request(&dut(Frame::new("slack").arg("node", &net)))
        .unwrap();
    let warm_paths = shadow
        .request(&dut(Frame::new("worst-paths").arg("k", 10)))
        .unwrap();
    let warm_dump = shadow.request(&dut(Frame::new("dump"))).unwrap();

    // Uninterrupted twin: one session, the same edits, no panic, no
    // replication, no failover.
    let mut cold = Session::new(lib);
    assert_eq!(
        cold.handle(&Frame::new("load").with_payload(text)).verb,
        "ok"
    );
    assert_eq!(cold.handle(&Frame::new("analyze")).verb, "ok");
    assert_eq!(cold.handle(&eco_resize(&inst)).verb, "ok");
    let cold_eco = cold.handle(&scale());
    let cold_analyze = cold.handle(&Frame::new("analyze"));
    let cold_slack = cold.handle(&Frame::new("slack").arg("node", &net));
    let cold_paths = cold.handle(&Frame::new("worst-paths").arg("k", 10));
    let cold_dump = cold.handle(&Frame::new("dump"));

    // Bit-identical, masking only the wall-clock `seconds` argument
    // (and the routing `design` argument the twin never had).
    let strip = |f: &Frame| {
        let mut f = f.clone();
        f.args.retain(|(k, _)| k != "seconds" && k != "design");
        f
    };
    assert_eq!(strip(&warm_eco), strip(&cold_eco), "eco diverged");
    assert_eq!(
        strip(&warm_analyze),
        strip(&cold_analyze),
        "analyze diverged"
    );
    assert_eq!(strip(&warm_slack), strip(&cold_slack), "slack diverged");
    assert_eq!(strip(&warm_paths), strip(&cold_paths), "paths diverged");
    assert_eq!(strip(&warm_dump), strip(&cold_dump), "dump diverged");

    shadow.request(&Frame::new("shutdown")).unwrap();
    standby_handle.join().unwrap().unwrap();
}

// --- Reactor transport under chaos -----------------------------------
//
// The event loop shares the session, journal and deadline semantics
// with the threaded server but owns its own I/O path (nonblocking
// reads into a push decoder, queued writes), so the three invariants
// are re-proven against it with the same seeded matrix. The one
// deliberate exception is `net.unwind.escape`: that hook exists to
// kill a worker *thread* and poison the lock, and the reactor has
// exactly one thread — arming it would be a test of `panic!`, not of
// the daemon.

fn start_reactor(
    lib: Library,
    options: ServerOptions,
) -> (
    std::net::SocketAddr,
    thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind("127.0.0.1:0", lib, options).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = thread::spawn(move || server.run_reactor());
    (addr, handle)
}

/// Invariant 1+codec, reactor flavour: the fault matrix fires on
/// *both* sides — the client's `FaultStream` and the reactor's inline
/// injection points (`options.faults`) — and every reply is still
/// byte-identical to the clean baseline. Short reads and `WouldBlock`
/// mid-frame land in the push decoder's buffer, not on the floor.
#[test]
fn reactor_faulted_both_sides_decodes_identically() {
    let _guard = serialised();
    let (lib, text, _) = pipeline();

    // Clean baseline from an unfaulted reactor.
    let requests = [
        Frame::new("hello"),
        Frame::new("load").with_payload(text),
        Frame::new("analyze"),
        Frame::new("worst-paths").arg("k", 5),
        Frame::new("slack")
            .arg("node", "s0b0")
            .arg("node", "s1b0")
            .arg("node", "s2b0"),
    ];
    let (addr, server) = start_reactor(lib.clone(), ServerOptions::default());
    let mut clean = Client::connect(addr).unwrap();
    let baseline: Vec<Frame> = requests.iter().map(|f| clean.request(f).unwrap()).collect();
    clean.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();

    for seed in seeds() {
        let plan = FaultPlan::seeded(seed)
            .armed(hb_fault::IO_READ_SHORT, Fault::with_rate(40))
            .armed(hb_fault::IO_READ_ERR, Fault::with_rate(25))
            .armed(hb_fault::IO_WRITE_SHORT, Fault::with_rate(40))
            .armed(hb_fault::IO_WRITE_ERR, Fault::with_rate(20));
        let options = ServerOptions {
            faults: plan.clone(),
            ..ServerOptions::default()
        };
        let (addr, server) = start_reactor(lib.clone(), options);

        let stream = TcpStream::connect(addr).unwrap();
        let mut writes =
            FaultStream::new(std::io::empty(), stream.try_clone().unwrap(), plan.clone());
        let mut reads =
            FrameReader::new(std::io::BufReader::new(FaultStream::reader(stream, plan)));
        for (req, want) in requests.iter().zip(&baseline) {
            writes.write_all(req.encode().as_bytes()).unwrap();
            writes.flush().unwrap();
            let got = loop {
                match reads.read_frame() {
                    Ok(Some(frame)) => break frame,
                    Ok(None) => panic!("seed {seed:#x}: connection closed mid-matrix"),
                    Err(ProtoError::Io(e))
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        continue; // injected; partial frame is retained
                    }
                    Err(e) => panic!("seed {seed:#x}: {e}"),
                }
            };
            // Everything but the wall-clock `seconds` arg must match.
            let strip = |f: &Frame| {
                let mut f = f.clone();
                f.args.retain(|(k, _)| k != "seconds");
                f
            };
            assert_eq!(
                strip(&got),
                strip(want),
                "seed {seed:#x}: reply to `{}` diverged",
                req.verb
            );
        }
        writes
            .write_all(Frame::new("shutdown").encode().as_bytes())
            .unwrap();
        writes.flush().unwrap();
        server.join().unwrap().unwrap();
    }
}

/// Invariant 1, reactor flavour: the event loop enforces the frame
/// deadline against a slowloris drip and the idle timeout against a
/// silent peer — without a watchdog thread, purely from its sweep.
#[test]
fn reactor_reaps_slowloris_and_idle_connections() {
    let _guard = serialised();
    let (lib, _, _) = pipeline();
    let options = ServerOptions {
        frame_deadline: Duration::from_millis(300),
        idle_timeout: Duration::from_millis(1200),
        ..ServerOptions::default()
    };
    let (addr, server) = start_reactor(lib, options);

    // Slowloris: drip an unterminated header forever.
    let start = Instant::now();
    let drip = TcpStream::connect(addr).unwrap();
    let mut replies = FrameReader::new(std::io::BufReader::new(drip.try_clone().unwrap()));
    let feeder = thread::spawn(move || {
        let mut drip = &drip;
        for byte in std::iter::repeat_n(b'a', 200) {
            if drip.write_all(&[byte]).is_err() {
                return; // reactor cut us off
            }
            thread::sleep(Duration::from_millis(40));
        }
    });
    let reply = replies.read_frame().unwrap().expect("a timeout reply");
    assert_eq!(reply.verb, "error");
    assert_eq!(reply.get("code"), Some("timeout"));
    assert!(
        start.elapsed() < Duration::from_secs(3),
        "frame deadline not enforced: {:?}",
        start.elapsed()
    );
    assert!(replies.read_frame().unwrap().is_none(), "must be cut off");
    feeder.join().unwrap();

    // Idle: connect, say nothing, get reaped.
    let start = Instant::now();
    let idle = TcpStream::connect(addr).unwrap();
    let mut replies = FrameReader::new(std::io::BufReader::new(idle));
    assert!(replies.read_frame().unwrap().is_none(), "reaped with EOF");
    let elapsed = start.elapsed();
    assert!(
        elapsed >= Duration::from_millis(1000) && elapsed < Duration::from_secs(5),
        "idle reaper fired at {elapsed:?}, expected ~1.2s"
    );

    // The loop itself never stalled for other clients.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.request(&Frame::new("hello")).unwrap().verb, "ok");
    client.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}

/// Invariant 2+3, reactor flavour: a panicking ECO dispatched from
/// the event loop is isolated by the same journal recovery as the
/// threaded path, and the recovered session answers bit-identical to
/// a cold twin. A panic here would otherwise take down every
/// connection at once — the single-thread design leans hard on the
/// catch.
#[test]
fn reactor_eco_panic_recovers_bit_identical_to_cold() {
    let _guard = serialised();
    let (lib, text, inst) = pipeline();
    let faults = FaultPlan::seeded(0xDAC89).armed(hb_fault::SESSION_ECO_PANIC, Fault::once());
    let options = ServerOptions {
        faults,
        ..ServerOptions::default()
    };
    let (addr, server) = start_reactor(lib.clone(), options);
    let mut client = Client::connect(addr).unwrap();

    let reply = client
        .request(&Frame::new("load").with_payload(text.clone()))
        .unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    assert_eq!(client.request(&Frame::new("analyze")).unwrap().verb, "ok");

    // The injected panic: isolated, recovered, the loop survives.
    let reply = client.request(&eco_resize(&inst)).unwrap();
    assert_eq!(reply.verb, "error", "{:?}", reply.payload);
    assert_eq!(reply.get("code"), Some("internal"));
    assert_eq!(reply.get("recovered"), Some("1"), "{:?}", reply.payload);

    // Same connection, fault budget spent: the ECO re-applies.
    let warm_eco = client.request(&eco_resize(&inst)).unwrap();
    assert_eq!(warm_eco.verb, "ok", "{:?}", warm_eco.payload);
    let warm_paths = client
        .request(&Frame::new("worst-paths").arg("k", 20))
        .unwrap();
    let warm_dump = client.request(&Frame::new("dump")).unwrap();

    // Cold twin: fresh session, same text, same single ECO.
    let mut cold = Session::new(lib);
    cold.handle(&Frame::new("load").with_payload(text));
    cold.handle(&Frame::new("analyze"));
    let cold_eco = cold.handle(&eco_resize(&inst));
    let cold_paths = cold.handle(&Frame::new("worst-paths").arg("k", 20));
    let cold_dump = cold.handle(&Frame::new("dump"));

    assert_eq!(warm_dump.payload, cold_dump.payload, "designs diverged");
    for key in ["ok", "worst", "period"] {
        assert_eq!(warm_eco.get(key), cold_eco.get(key), "eco {key} diverged");
    }
    assert_eq!(warm_paths.payload, cold_paths.payload, "paths diverged");

    client.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}
