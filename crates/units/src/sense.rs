use std::fmt;

use crate::{RiseFall, Time, Transition};

/// The unateness of a timing arc: how an input transition direction maps
/// to an output transition direction.
///
/// The paper's synchronising-element assumption requires every control
/// signal to be a *monotonic* function of exactly one clock — i.e. the
/// control path must have a definite [`Sense`] (positive or negative), not
/// [`Sense::NonUnate`].
///
/// # Examples
///
/// ```
/// use hb_units::{Sense, Transition};
///
/// assert_eq!(Sense::Negative.apply(Transition::Rise), Some(Transition::Fall));
/// assert_eq!(Sense::Positive.then(Sense::Negative), Sense::Negative);
/// assert_eq!(Sense::NonUnate.apply(Transition::Rise), None);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sense {
    /// Output transitions in the same direction as the input (buffer, AND).
    #[default]
    Positive,
    /// Output transitions in the opposite direction (inverter, NAND, NOR).
    Negative,
    /// Either direction is possible (XOR, complex arcs).
    NonUnate,
}

impl Sense {
    /// Maps an input transition to the resulting output transition, or
    /// `None` when the arc is non-unate (both directions possible).
    #[inline]
    pub fn apply(self, tr: Transition) -> Option<Transition> {
        match self {
            Sense::Positive => Some(tr),
            Sense::Negative => Some(tr.inverted()),
            Sense::NonUnate => None,
        }
    }

    /// Composes two arcs in series.
    #[inline]
    pub fn then(self, next: Sense) -> Sense {
        match (self, next) {
            (Sense::NonUnate, _) | (_, Sense::NonUnate) => Sense::NonUnate,
            (Sense::Positive, s) => s,
            (Sense::Negative, Sense::Positive) => Sense::Negative,
            (Sense::Negative, Sense::Negative) => Sense::Positive,
        }
    }

    /// Merges the senses of two parallel paths between the same endpoints.
    #[inline]
    pub fn merge(self, other: Sense) -> Sense {
        if self == other {
            self
        } else {
            Sense::NonUnate
        }
    }

    /// Propagates a rise/fall settling-time pair through an arc of this
    /// sense, adding the arc's rise/fall delay.
    ///
    /// The arc delay is indexed by the **output** transition: a negative
    /// unate arc produces a rising output (using `delay.rise`) from a
    /// falling input. Non-unate arcs conservatively let either input
    /// direction produce either output direction. Input sentinel values
    /// (`Time::NEG_INF`) stay absorbing.
    pub fn propagate(self, input: RiseFall<Time>, delay: RiseFall<Time>) -> RiseFall<Time> {
        match self {
            Sense::Positive => input.saturating_add(delay),
            Sense::Negative => input.swapped().saturating_add(delay),
            Sense::NonUnate => {
                let worst = input.rise.max(input.fall);
                RiseFall::splat(worst).saturating_add(delay)
            }
        }
    }
}

impl fmt::Display for Sense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sense::Positive => "positive",
            Sense::Negative => "negative",
            Sense::NonUnate => "non-unate",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply() {
        assert_eq!(
            Sense::Positive.apply(Transition::Fall),
            Some(Transition::Fall)
        );
        assert_eq!(
            Sense::Negative.apply(Transition::Fall),
            Some(Transition::Rise)
        );
        assert_eq!(Sense::NonUnate.apply(Transition::Fall), None);
    }

    #[test]
    fn composition_is_group_like() {
        use Sense::*;
        assert_eq!(Positive.then(Positive), Positive);
        assert_eq!(Negative.then(Negative), Positive);
        assert_eq!(Positive.then(Negative), Negative);
        assert_eq!(Negative.then(Positive), Negative);
        assert_eq!(NonUnate.then(Positive), NonUnate);
        assert_eq!(Negative.then(NonUnate), NonUnate);
    }

    #[test]
    fn merge_parallel_paths() {
        use Sense::*;
        assert_eq!(Positive.merge(Positive), Positive);
        assert_eq!(Positive.merge(Negative), NonUnate);
        assert_eq!(NonUnate.merge(NonUnate), NonUnate);
    }

    #[test]
    fn propagation() {
        let input = RiseFall::new(Time::from_ns(10), Time::from_ns(20));
        let delay = RiseFall::new(Time::from_ns(1), Time::from_ns(2));
        // Positive: rise output from rise input.
        assert_eq!(
            Sense::Positive.propagate(input, delay),
            RiseFall::new(Time::from_ns(11), Time::from_ns(22))
        );
        // Negative: rise output from fall input (20 + 1), fall from rise (10 + 2).
        assert_eq!(
            Sense::Negative.propagate(input, delay),
            RiseFall::new(Time::from_ns(21), Time::from_ns(12))
        );
        // Non-unate: worst input either way.
        assert_eq!(
            Sense::NonUnate.propagate(input, delay),
            RiseFall::new(Time::from_ns(21), Time::from_ns(22))
        );
        // Sentinels absorb.
        let quiet = RiseFall::splat(Time::NEG_INF);
        assert_eq!(Sense::Positive.propagate(quiet, delay), quiet);
    }

    #[test]
    fn display_and_default() {
        assert_eq!(Sense::default(), Sense::Positive);
        assert_eq!(Sense::NonUnate.to_string(), "non-unate");
    }
}
