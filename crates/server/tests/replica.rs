//! Journal-streaming replication end to end: the `repl-state` /
//! `repl-pull` wire verbs, the warm-standby sync loop mirroring a
//! primary's fleet, epoch-driven resync after history rewrites, and
//! promotion after the primary dies.

use std::thread;
use std::time::{Duration, Instant};

use hb_cells::sc89;
use hb_io::{Frame, FrameDecoder};
use hb_server::{Client, Server, ServerOptions};

fn start_server(
    options: ServerOptions,
) -> (
    std::net::SocketAddr,
    thread::JoinHandle<std::io::Result<()>>,
) {
    let server = Server::bind("127.0.0.1:0", sc89(), options).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

fn standby_options(primary: std::net::SocketAddr) -> ServerOptions {
    ServerOptions {
        standby_of: Some(primary.to_string()),
        sync_interval: Duration::from_millis(25),
        promote_after: 3,
        ..ServerOptions::default()
    }
}

fn design_text(name: &str) -> String {
    format!(
        "design {name}\n\
         module top\n\
         \x20 port in din clk\n\
         \x20 port out dout\n\
         \x20 inst g0 BUF_X1 A=din Y=n0\n\
         \x20 inst g1 INV_X1 A=n0 Y=n1\n\
         \x20 inst cap DFF D=n1 CK=clk Q=dout\n\
         end\n\
         top top\n\
         clock clk period 10ns rise 0ns fall 5ns\n\
         clockport clk clk\n\
         arrive din clk rise 1ns\n"
    )
}

fn scale_eco(net: &str, percent: u32) -> Frame {
    Frame::new("eco")
        .arg("op", "scale-net")
        .arg("net", net)
        .arg("percent", percent)
}

/// The fingerprint column of one design's `designs` line, or None if
/// the design is missing.
fn design_fp(client: &mut Client, id: &str) -> Option<String> {
    let reply = client.request(&Frame::new("designs")).unwrap();
    reply
        .payload
        .as_deref()
        .unwrap_or("")
        .lines()
        .find_map(|l| {
            let mut parts = l.split_whitespace();
            (parts.next() == Some(id)).then(|| {
                parts
                    .find_map(|p| p.strip_prefix("fp="))
                    .unwrap()
                    .to_owned()
            })
        })
}

/// Polls `standby` until `id`'s fingerprint there equals `want`.
fn await_fp(standby: std::net::SocketAddr, id: &str, want: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut client = Client::connect(standby).unwrap();
        if design_fp(&mut client, id).as_deref() == Some(want) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "standby never reached fp={want} for `{id}`"
        );
        thread::sleep(Duration::from_millis(25));
    }
}

/// Polls `addr` until its `stats` reply reports `role=want`.
fn await_role(addr: std::net::SocketAddr, want: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(mut client) = Client::connect(addr) {
            if let Ok(reply) = client.request(&Frame::new("stats")) {
                if reply.get("role") == Some(want) {
                    return;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "node at {addr} never reported role={want}"
        );
        thread::sleep(Duration::from_millis(25));
    }
}

/// The pull protocol over the wire: entries stream as nested frames,
/// cursors advance, stale epochs force a resync from zero.
#[test]
fn repl_pull_streams_the_journal_with_epoch_resync() {
    let (addr, server) = start_server(ServerOptions::default());
    let mut client = Client::connect(addr).unwrap();

    let text = design_text("alpha");
    for req in [
        Frame::new("load").with_payload(text),
        Frame::new("analyze"),
        scale_eco("n0", 120),
    ] {
        assert_eq!(client.request(&req).unwrap().verb, "ok");
    }

    // repl-state reports the default design's cursor.
    let state = client.request(&Frame::new("repl-state")).unwrap();
    assert_eq!(state.verb, "ok");
    assert_eq!(state.get("count"), Some("1"));
    let line = state.payload.as_deref().unwrap().lines().next().unwrap();
    let cols: Vec<&str> = line.split_whitespace().collect();
    assert_eq!(cols[0], "default");
    let epoch = cols[1];
    assert_eq!(cols[2], "3", "load+analyze+eco journal");
    assert_ne!(cols[3], "-", "a mutated design has a fingerprint");

    // A cold replica (epoch 0, since 0) gets flagged resync and the
    // full history: three nested `entry` frames carrying the original
    // requests verbatim.
    let pull = client
        .request(
            &Frame::new("repl-pull")
                .arg("design", "default")
                .arg("epoch", 0)
                .arg("since", 0),
        )
        .unwrap();
    assert_eq!(pull.verb, "ok", "{:?}", pull.payload);
    assert_eq!(pull.get("resync"), Some("1"), "cold epoch must resync");
    assert_eq!(pull.get("count"), Some("3"));
    assert_eq!(pull.get("more"), Some("0"));
    assert_eq!(pull.get("fp"), Some(cols[3]), "complete page carries fp");
    let mut decoder = FrameDecoder::new();
    decoder.feed(pull.payload.as_deref().unwrap().as_bytes());
    let mut verbs = Vec::new();
    while let Some(entry) = decoder.next_frame().unwrap() {
        assert_eq!(entry.verb, "entry");
        assert_eq!(entry.get("expect"), Some("ok"));
        let mut inner = FrameDecoder::new();
        inner.feed(entry.payload.as_deref().unwrap().as_bytes());
        verbs.push(inner.next_frame().unwrap().unwrap().verb);
    }
    decoder.finish().unwrap();
    assert_eq!(verbs, ["load", "analyze", "eco"]);

    // A level replica pulling from its cursor gets an empty page.
    let pull = client
        .request(
            &Frame::new("repl-pull")
                .arg("design", "default")
                .arg("epoch", epoch)
                .arg("since", 3),
        )
        .unwrap();
    assert_eq!(pull.get("resync"), Some("0"));
    assert_eq!(pull.get("count"), Some("0"));

    // A fresh load rewrites history: the epoch moves and the stale
    // cursor is told to start over.
    let reply = client
        .request(&Frame::new("load").with_payload(design_text("beta")))
        .unwrap();
    assert_eq!(reply.verb, "ok");
    let pull = client
        .request(
            &Frame::new("repl-pull")
                .arg("design", "default")
                .arg("epoch", epoch)
                .arg("since", 3),
        )
        .unwrap();
    assert_eq!(pull.get("resync"), Some("1"));
    assert_eq!(pull.get("since"), Some("0"));
    assert_ne!(pull.get("epoch"), Some(epoch));

    // Errors are structured: unknown design, unparseable cursor.
    let reply = client
        .request(&Frame::new("repl-pull").arg("design", "ghost"))
        .unwrap();
    assert_eq!(reply.get("code"), Some("unknown-design"));
    let reply = client
        .request(
            &Frame::new("repl-pull")
                .arg("design", "default")
                .arg("epoch", "soon"),
        )
        .unwrap();
    assert_eq!(reply.get("code"), Some("usage"));

    client.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}

/// The full standby lifecycle: shadow the primary's designs (including
/// ones opened, mutated, re-loaded, and closed mid-stream), answer
/// queries from the warm shadow, and keep serving after the primary
/// dies — with the exact state the primary last acknowledged.
#[test]
fn standby_mirrors_mutations_and_survives_primary_death() {
    let (primary, primary_handle) = start_server(ServerOptions::default());
    let (standby, standby_handle) = start_server(standby_options(primary));
    let mut client = Client::connect(primary).unwrap();

    // Two tenants on the primary, each mutated past its load.
    for id in ["left", "right"] {
        assert_eq!(
            client
                .request(&Frame::new("open").arg("design", id))
                .unwrap()
                .verb,
            "ok"
        );
        for req in [
            Frame::new("load").with_payload(design_text(id)),
            Frame::new("analyze"),
            scale_eco("n0", 130),
        ] {
            let reply = client.request(&req.arg("design", id)).unwrap();
            assert_eq!(reply.verb, "ok", "{id}: {:?}", reply.payload);
        }
    }
    // One short-lived tenant the standby must prune again.
    client
        .request(&Frame::new("open").arg("design", "doomed"))
        .unwrap();

    // The standby catches up to the primary's exact fingerprints.
    let left_fp = design_fp(&mut client, "left").unwrap();
    let right_fp = design_fp(&mut client, "right").unwrap();
    await_fp(standby, "left", &left_fp);
    await_fp(standby, "right", &right_fp);

    // Shadows are warm and queryable, and byte-identical to the
    // primary's sessions.
    let mut shadow = Client::connect(standby).unwrap();
    for id in ["left", "right"] {
        let want = client
            .request(&Frame::new("dump").arg("design", id))
            .unwrap();
        let got = shadow
            .request(&Frame::new("dump").arg("design", id))
            .unwrap();
        assert_eq!(got.payload, want.payload, "{id}: shadow dump diverged");
        let got = shadow
            .request(&Frame::new("slack").arg("design", id).arg("node", "n1"))
            .unwrap();
        assert_eq!(got.verb, "ok", "{id}: {:?}", got.payload);
    }

    // A history rewrite (fresh load) and a close both propagate.
    client
        .request(&Frame::new("close").arg("design", "doomed"))
        .unwrap();
    let reply = client
        .request(
            &Frame::new("load")
                .arg("design", "left")
                .with_payload(design_text("left_v2")),
        )
        .unwrap();
    assert_eq!(reply.verb, "ok");
    let left_fp = design_fp(&mut client, "left").unwrap();
    await_fp(standby, "left", &left_fp);
    let deadline = Instant::now() + Duration::from_secs(10);
    while design_fp(&mut shadow, "doomed").is_some() {
        assert!(Instant::now() < deadline, "standby never pruned `doomed`");
        thread::sleep(Duration::from_millis(25));
    }
    let want_dump = client
        .request(&Frame::new("dump").arg("design", "left"))
        .unwrap();

    // Kill the primary mid-flight. After `promote_after` missed syncs
    // the standby promotes itself: same designs, same state, now
    // accepting writes of its own (until then its writes are fenced).
    client.request(&Frame::new("shutdown")).unwrap();
    primary_handle.join().unwrap().unwrap();
    await_role(standby, "primary");

    let got = shadow
        .request(&Frame::new("dump").arg("design", "left"))
        .unwrap();
    assert_eq!(
        got.payload, want_dump.payload,
        "failover lost acknowledged state"
    );
    let reply = shadow
        .request(&scale_eco("n0", 80).arg("design", "right"))
        .unwrap();
    assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    let reply = shadow
        .request(&Frame::new("analyze").arg("design", "right"))
        .unwrap();
    assert_eq!(reply.verb, "ok");

    // The post-failover write sticks: no zombie sync thread resets it.
    thread::sleep(Duration::from_millis(150));
    let stats = shadow
        .request(&Frame::new("stats").arg("design", "right"))
        .unwrap();
    assert_eq!(stats.get("ecos"), Some("2"), "{:?}", stats.payload);

    shadow.request(&Frame::new("shutdown")).unwrap();
    standby_handle.join().unwrap().unwrap();
}

/// A deeper design whose `load` entry dwarfs the page-bound floor, so
/// paging tests exercise real boundaries.
fn long_design(name: &str, stages: usize) -> String {
    let mut text = format!("design {name}\nmodule top\n\x20 port in din clk\n\x20 port out dout\n");
    let mut prev = "din".to_owned();
    for i in 0..stages {
        text.push_str(&format!("\x20 inst g{i} BUF_X1 A={prev} Y=n{i}\n"));
        prev = format!("n{i}");
    }
    text.push_str(&format!(
        "\x20 inst cap DFF D={prev} CK=clk Q=dout\nend\ntop top\n\
         clock clk period 10ns rise 0ns fall 5ns\nclockport clk clk\n\
         arrive din clk rise 1ns\n"
    ));
    text
}

/// The page bound is judged on the encoded `entry` wrapper frame that
/// actually lands in the payload: an entry fitting *exactly* at the
/// bound is included (not dropped, not shipped twice), one byte less
/// splits the page before it, and pages concatenate to the full
/// stream. Pins the off-by-one at the `max=` boundary.
#[test]
fn repl_pull_page_boundary_is_exact() {
    let (addr, server) = start_server(ServerOptions::default());
    let mut client = Client::connect(addr).unwrap();
    for req in [
        Frame::new("load").with_payload(long_design("paged", 80)),
        Frame::new("analyze"),
        scale_eco("n0", 120),
    ] {
        assert_eq!(client.request(&req).unwrap().verb, "ok");
    }

    let mut pull = |epoch: &str, since: usize, max: usize| {
        client
            .request(
                &Frame::new("repl-pull")
                    .arg("design", "default")
                    .arg("epoch", epoch)
                    .arg("since", since)
                    .arg("max", max),
            )
            .unwrap()
    };
    let full = pull("0", 0, hb_server::MAX_STREAM_BYTES);
    assert_eq!(full.get("count"), Some("3"));
    assert_eq!(full.get("more"), Some("0"));
    let epoch = full.get("epoch").unwrap().to_owned();
    let payload = full.payload.as_deref().unwrap().to_owned();

    // Measure each wrapped entry frame by re-encoding the decoded
    // stream; the codec is canonical, asserted by reassembly.
    let mut sizes = Vec::new();
    let mut decoder = FrameDecoder::new();
    decoder.feed(payload.as_bytes());
    let mut reassembled = String::new();
    while let Some(entry) = decoder.next_frame().unwrap() {
        let encoded = entry.encode();
        sizes.push(encoded.len());
        reassembled.push_str(&encoded);
    }
    assert_eq!(reassembled, payload, "entry re-encoding is canonical");
    assert!(sizes[0] > 1024, "load entry must exceed the min page bound");

    // Exactly the first two entries' bytes: both ship, third waits.
    let fit = sizes[0] + sizes[1];
    let page = pull(&epoch, 0, fit);
    assert_eq!(page.get("count"), Some("2"), "exact fit is included");
    assert_eq!(page.get("more"), Some("1"));
    assert_eq!(page.get("fp"), None, "partial page carries no fp");
    assert_eq!(page.payload.as_deref().unwrap().len(), fit);

    // One byte under: the second entry no longer fits.
    let page_short = pull(&epoch, 0, fit - 1);
    assert_eq!(page_short.get("count"), Some("1"), "one byte under splits");
    assert_eq!(page_short.get("more"), Some("1"));

    // The continuation cursor picks up precisely where the page ended:
    // no drop, no duplicate, pages concatenate to the full stream.
    let rest = pull(&epoch, 2, hb_server::MAX_STREAM_BYTES);
    assert_eq!(rest.get("count"), Some("1"));
    assert_eq!(rest.get("more"), Some("0"));
    assert!(rest.get("fp").is_some(), "complete page carries fp");
    let mut joined = page.payload.as_deref().unwrap().to_owned();
    joined.push_str(rest.payload.as_deref().unwrap());
    assert_eq!(joined, payload, "pages must concatenate losslessly");

    // A first entry bigger than the bound still ships whole (clamped
    // to the floor, the page can never starve).
    let oversized = pull(&epoch, 0, 1);
    assert_eq!(oversized.get("count"), Some("1"));
    assert_eq!(oversized.get("more"), Some("1"));

    client.request(&Frame::new("shutdown")).unwrap();
    server.join().unwrap().unwrap();
}

/// A standby configured with a small page bound resyncs a long journal
/// in many bounded pages — one page per `repl-pull` round trip — and
/// still converges to the primary's exact fingerprint.
#[test]
fn standby_resync_ships_bounded_pages() {
    let (primary, primary_handle) = start_server(ServerOptions::default());
    let mut client = Client::connect(primary).unwrap();
    assert_eq!(
        client
            .request(&Frame::new("load").with_payload(long_design("paged", 60)))
            .unwrap()
            .verb,
        "ok"
    );
    assert_eq!(client.request(&Frame::new("analyze")).unwrap().verb, "ok");
    for i in 0..200 {
        let net = format!("n{}", i % 50);
        let reply = client.request(&scale_eco(&net, 102)).unwrap();
        assert_eq!(reply.verb, "ok", "{:?}", reply.payload);
    }

    let page_bytes = 2048usize;
    let (standby, standby_handle) = start_server(ServerOptions {
        repl_page_bytes: page_bytes,
        ..standby_options(primary)
    });
    let want = design_fp(&mut client, "default").unwrap();
    await_fp(standby, "default", &want);

    // The standby's own counters show the resync was paged: several
    // round trips, each bounded (average page ≤ the configured bound
    // plus the one oversized `load` entry head page).
    let mut shadow = Client::connect(standby).unwrap();
    let metrics = shadow.request(&Frame::new("metrics")).unwrap();
    let text = metrics.payload.as_deref().unwrap();
    let scrape = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{name} missing from exposition"))
    };
    let pages = scrape("hb_repl_pages_total");
    let bytes = scrape("hb_repl_bytes_total");
    assert!(pages >= 3, "a long journal must page: got {pages} pages");
    assert!(bytes > 0);
    assert!(
        bytes / pages <= 2 * page_bytes as u64,
        "pages must stay near the bound: {bytes} bytes over {pages} pages"
    );

    client.request(&Frame::new("shutdown")).unwrap();
    primary_handle.join().unwrap().unwrap();
    await_role(standby, "primary");
    shadow.request(&Frame::new("shutdown")).unwrap();
    standby_handle.join().unwrap().unwrap();
}

/// The standby reconnect schedule is the client's seeded decorrelated
/// jitter rebased to the sync interval: deterministic per seed, two
/// seeds diverge, and every wait stays inside [interval, 8×interval].
#[test]
fn standby_backoff_schedules_diverge_by_seed() {
    let interval = Duration::from_millis(25);
    let a = hb_server::standby_backoff_schedule(0xA11CE, interval, 16);
    let b = hb_server::standby_backoff_schedule(0xB0B, interval, 16);
    assert_eq!(
        a,
        hb_server::standby_backoff_schedule(0xA11CE, interval, 16),
        "same seed, same schedule"
    );
    assert_ne!(a, b, "different seeds must diverge");
    for wait in a.iter().chain(&b) {
        assert!(*wait >= interval, "wait below the sync interval: {wait:?}");
        assert!(*wait <= interval * 8, "wait past the cap: {wait:?}");
    }
}

/// While its primary lives, a standby fences every mutating verb with
/// a structured `error code=fenced term=N role=standby`, and both
/// nodes report their role and term on `stats` and `designs`.
#[test]
fn standby_fences_writes_and_reports_role() {
    let (primary, primary_handle) = start_server(ServerOptions::default());
    let (standby, standby_handle) = start_server(standby_options(primary));
    let mut client = Client::connect(primary).unwrap();
    assert_eq!(
        client
            .request(&Frame::new("load").with_payload(design_text("fenced")))
            .unwrap()
            .verb,
        "ok"
    );
    let want = design_fp(&mut client, "default").unwrap();
    await_fp(standby, "default", &want);

    let stats = client.request(&Frame::new("stats")).unwrap();
    assert_eq!(stats.get("role"), Some("primary"));
    assert_eq!(stats.get("term"), Some("1"));
    let designs = client.request(&Frame::new("designs")).unwrap();
    assert_eq!(designs.get("role"), Some("primary"));

    let mut shadow = Client::connect(standby).unwrap();
    let stats = shadow.request(&Frame::new("stats")).unwrap();
    assert_eq!(stats.get("role"), Some("standby"));
    assert_eq!(stats.get("term"), Some("1"), "adopted from the primary");

    // Every mutating verb is fenced; reads keep answering.
    for req in [
        Frame::new("load").with_payload(design_text("nope")),
        Frame::new("analyze"),
        scale_eco("n0", 120),
        Frame::new("open").arg("design", "side"),
    ] {
        let reply = shadow.request(&req).unwrap();
        assert_eq!(reply.verb, "error", "{:?}", reply.payload);
        assert_eq!(reply.get("code"), Some("fenced"));
        assert_eq!(reply.get("role"), Some("standby"));
        assert!(reply.get("term").is_some());
    }
    let reply = shadow
        .request(&Frame::new("slack").arg("node", "n1"))
        .unwrap();
    assert_eq!(reply.verb, "ok", "reads flow on a standby");

    // The fence shows up in the standby's counters.
    let metrics = shadow.request(&Frame::new("metrics")).unwrap();
    let text = metrics.payload.as_deref().unwrap();
    let fenced = text
        .lines()
        .find(|l| l.starts_with("hb_fenced_writes_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap();
    assert_eq!(fenced, 4);

    client.request(&Frame::new("shutdown")).unwrap();
    primary_handle.join().unwrap().unwrap();
    await_role(standby, "primary");
    shadow.request(&Frame::new("shutdown")).unwrap();
    standby_handle.join().unwrap().unwrap();
}

/// Chained standbys: a standby serves the replication verbs itself, so
/// a second-tier standby syncing *from the first standby* converges to
/// the primary's exact state (primary → standby → standby).
#[test]
fn chained_standby_mirrors_through_intermediate() {
    let (primary, primary_handle) = start_server(ServerOptions::default());
    let (mid, mid_handle) = start_server(standby_options(primary));
    let (tail, tail_handle) = start_server(ServerOptions {
        standby_of: Some(mid.to_string()),
        sync_interval: Duration::from_millis(25),
        promote_after: 3,
        ..ServerOptions::default()
    });

    let mut client = Client::connect(primary).unwrap();
    for req in [
        Frame::new("load").with_payload(design_text("chained")),
        Frame::new("analyze"),
        scale_eco("n0", 130),
        scale_eco("n1", 85),
    ] {
        assert_eq!(client.request(&req).unwrap().verb, "ok");
    }
    let want = design_fp(&mut client, "default").unwrap();
    await_fp(mid, "default", &want);
    await_fp(tail, "default", &want);

    // The tail's shadow is byte-identical to the primary's session.
    let want_dump = client.request(&Frame::new("dump")).unwrap();
    let mut tail_client = Client::connect(tail).unwrap();
    let got_dump = tail_client.request(&Frame::new("dump")).unwrap();
    assert_eq!(got_dump.payload, want_dump.payload, "chained dump diverged");

    // Both tiers are fenced.
    for node in [mid, tail] {
        let mut shadow = Client::connect(node).unwrap();
        let reply = shadow.request(&scale_eco("n0", 120)).unwrap();
        assert_eq!(reply.get("code"), Some("fenced"));
    }

    client.request(&Frame::new("shutdown")).unwrap();
    primary_handle.join().unwrap().unwrap();
    await_role(mid, "primary");
    Client::connect(mid)
        .unwrap()
        .request(&Frame::new("shutdown"))
        .unwrap();
    mid_handle.join().unwrap().unwrap();
    await_role(tail, "primary");
    tail_client.request(&Frame::new("shutdown")).unwrap();
    tail_handle.join().unwrap().unwrap();
}

/// The dual-standby kill: with peers configured, losing the primary
/// makes *exactly one* of two standbys promote (majority-acked ranked
/// election), the loser chains behind the winner, writes to the loser
/// stay fenced, and the winner's post-failover replies are
/// bit-identical to an uninterrupted single-session run.
#[test]
fn dual_standby_quorum_promotes_exactly_one() {
    let bind = |options: ServerOptions| Server::bind("127.0.0.1:0", sc89(), options).unwrap();
    let mut a = bind(ServerOptions::default());
    let mut b = bind(standby_options(a.local_addr().unwrap()));
    let mut c = bind(standby_options(a.local_addr().unwrap()));
    let (a_addr, b_addr, c_addr) = (
        a.local_addr().unwrap(),
        b.local_addr().unwrap(),
        c.local_addr().unwrap(),
    );
    a.options_mut().unwrap().peers = vec![b_addr.to_string(), c_addr.to_string()];
    b.options_mut().unwrap().peers = vec![a_addr.to_string(), c_addr.to_string()];
    c.options_mut().unwrap().peers = vec![a_addr.to_string(), b_addr.to_string()];
    let a_handle = thread::spawn(move || a.run());
    let b_handle = thread::spawn(move || b.run());
    let c_handle = thread::spawn(move || c.run());

    let mut client = Client::connect(a_addr).unwrap();
    let workload = [
        Frame::new("load").with_payload(design_text("quorum")),
        Frame::new("analyze"),
        scale_eco("n0", 130),
    ];
    for req in &workload {
        assert_eq!(client.request(req).unwrap().verb, "ok");
    }
    let want = design_fp(&mut client, "default").unwrap();
    await_fp(b_addr, "default", &want);
    await_fp(c_addr, "default", &want);

    // Kill the primary; poll until exactly one standby promotes.
    client.request(&Frame::new("shutdown")).unwrap();
    a_handle.join().unwrap().unwrap();
    let role_of = |addr: std::net::SocketAddr| -> String {
        let mut c = Client::connect(addr).unwrap();
        c.request(&Frame::new("stats"))
            .unwrap()
            .get("role")
            .unwrap()
            .to_owned()
    };
    let deadline = Instant::now() + Duration::from_secs(15);
    let (winner, loser) = loop {
        let (rb, rc) = (role_of(b_addr), role_of(c_addr));
        match (rb.as_str(), rc.as_str()) {
            ("primary", "primary") => panic!("split brain: both standbys promoted"),
            ("primary", _) => break (b_addr, c_addr),
            (_, "primary") => break (c_addr, b_addr),
            _ => {
                assert!(Instant::now() < deadline, "no standby promoted");
                thread::sleep(Duration::from_millis(25));
            }
        }
    };

    // The winner's term moved past the dead primary's; the loser stays
    // fenced and never co-promotes, even given extra time.
    let mut promoted = Client::connect(winner).unwrap();
    let stats = promoted.request(&Frame::new("stats")).unwrap();
    assert!(stats.get("term").unwrap().parse::<u64>().unwrap() >= 2);
    thread::sleep(Duration::from_millis(300));
    assert_eq!(role_of(loser), "standby", "exactly one node may promote");
    let mut fenced = Client::connect(loser).unwrap();
    let reply = fenced.request(&scale_eco("n1", 80)).unwrap();
    assert_eq!(reply.get("code"), Some("fenced"), "{:?}", reply.payload);

    // The flow continues on the winner; the loser chains behind it.
    let post = scale_eco("n1", 80);
    assert_eq!(promoted.request(&post).unwrap().verb, "ok");
    let want = design_fp(&mut promoted, "default").unwrap();
    await_fp(loser, "default", &want);

    // Bit-identical to one uninterrupted session over the same edits.
    let warm_dump = promoted.request(&Frame::new("dump")).unwrap();
    let mut cold = hb_server::Session::new(sc89());
    for req in workload.iter().chain([&post]) {
        assert_eq!(cold.handle(req).verb, "ok");
    }
    let cold_dump = cold.handle(&Frame::new("dump"));
    assert_eq!(
        warm_dump.payload, cold_dump.payload,
        "post-failover state diverged from the uninterrupted run"
    );

    // Tear down. Note the loser must NOT promote once the winner dies
    // too: a lone survivor of a three-node cluster can never reach a
    // majority — that asymmetry is the split-brain protection.
    promoted.request(&Frame::new("shutdown")).unwrap();
    thread::sleep(Duration::from_millis(300));
    assert_eq!(
        role_of(loser),
        "standby",
        "a lone survivor must stay fenced without a quorum"
    );
    let mut last = Client::connect(loser).unwrap();
    last.request(&Frame::new("shutdown")).unwrap();
    for handle in [b_handle, c_handle] {
        handle.join().unwrap().unwrap();
    }
}
