//! Reproduces **Figure 3** and the worked example of Section 5: the
//! relationship between the offsets of a transparent synchronising
//! element, `O_zd = W + O_dx + D_dx`, swept across the control pulse.
//!
//! The paper's example: a transparent latch with no internal delays,
//! controlled by a 20 ns clock pulse, output asserted 5 ns after the
//! beginning of the pulse ⇒ `O_zd = 5 ns`, `O_dx = −15 ns`; a 2 ns
//! clock-to-control delay gives `O_ac = 2 ns`.

use hb_cells::SyncKind;
use hb_clock::EdgeId;
use hb_netlist::{InstId, NetId};
use hb_units::Time;
use hummingbird::{Replica, ReplicaTiming};

fn latch(cdel_ns: i64) -> Replica {
    Replica::new(
        InstId::from_raw(0),
        0,
        0,
        SyncKind::Transparent,
        EdgeId::from_raw(0),
        EdgeId::from_raw(1),
        NetId::from_raw(0),
        Some(NetId::from_raw(1)),
        ReplicaTiming {
            width: Time::from_ns(20),
            setup: Time::ZERO,
            hold: Time::ZERO,
            d_cx: Time::ZERO,
            d_dx: Time::ZERO,
            cdel: Time::from_ns(cdel_ns),
            out_extra: Time::ZERO,
        },
        true,
    )
}

fn main() {
    println!("Figure 3 — transparent latch offset relationship (W = 20 ns)");
    println!(
        "{:>8} {:>8} {:>10} {:>12}",
        "O_zd", "O_dx", "assert@", "close@"
    );
    let mut r = latch(2);
    // Start at the late end (O_zd = W) and walk the pair forward.
    loop {
        println!(
            "{:>8} {:>8} {:>10} {:>12}",
            r.o_zd().to_string(),
            r.o_dx().to_string(),
            format!("lead+{}", r.output_assert_offset()),
            format!("trail{}", r.input_close_offset()),
        );
        if r.transfer_forward(Time::from_ns(5)) == Time::ZERO {
            break;
        }
    }
    println!();
    println!("worked example (Section 5): O_zd = 5 ns after the leading edge");
    let mut r = latch(2);
    r.transfer_forward(Time::from_ns(15));
    println!(
        "  O_zd = {}  O_dx = {}  O_xc = {}",
        r.o_zd(),
        r.o_dx(),
        r.o_xc()
    );
    assert_eq!(r.o_zd(), Time::from_ns(5));
    assert_eq!(r.o_dx(), Time::from_ns(-15));
    assert_eq!(r.o_xc(), Time::from_ns(2));
    println!("  matches the paper.");
}
