//! Supplementary (minimum-delay) path constraint checking.
//!
//! Section 4 of the paper defines, for every combinational path ending
//! at a data input `y` of an element clocked with period `T_β`, the
//! *supplementary path constraint* `dmin_p > D_p − O_x + O_y − T_β`: the
//! signal must not be updated more than one clock period of `β` before
//! its closure, or `β` would capture a value from the wrong cycle. The
//! paper notes that its algorithms *do not* detect violations of these
//! constraints (they manifest as clock-skew style races); this module is
//! the natural extension that checks them.
//!
//! The check is conservative in the safe direction: the early launch
//! bound assumes a source can assert as soon as its ideal assertion edge
//! (offset zero, no control-path or element delay), so every real race
//! is flagged, at the cost of possible false positives on designs with
//! generous contamination delays. A violation is reported when the
//! earliest arrival at a data input falls inside the hold window of the
//! element's *previous* capture — the previous closure time plus the
//! capture control-path delay (clock skew) plus the element hold time.

use std::fmt;

use hb_sta::analysis::{propagate_ready_min, table};
use hb_units::{RiseFall, Time};

use crate::analysis::Prepared;
use crate::sync::Replica;

/// One violated supplementary (minimum-delay) constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinDelayViolation {
    /// The capturing instance name.
    pub inst: String,
    /// The control pulse index of the capturing replica.
    pub pulse: u32,
    /// By how much the earliest arrival undercuts the bound (positive
    /// values are the violation depth).
    pub shortfall: Time,
}

impl fmt::Display for MinDelayViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min-delay violation at {} (pulse {}): data may arrive {} too early",
            self.inst, self.pulse, self.shortfall
        )
    }
}

/// Checks every replica's supplementary constraint at the given offsets.
pub(crate) fn check_min_delays(
    prep: &Prepared<'_>,
    replicas: &[Replica],
) -> Vec<MinDelayViolation> {
    let mut violations = Vec::new();
    let overall = prep.timeline.overall_period();
    for (p, &start) in prep.passes.iter().enumerate() {
        // Earliest arrivals: seed sources at their ideal assertion edges
        // with zero offset (conservative early bound), propagate minimum
        // delays.
        let mut early = table(&prep.graph, Time::INF);
        let seed = |early: &mut Vec<RiseFall<Time>>, net: hb_netlist::NetId, at: Time| {
            let slot = &mut early[net.as_raw() as usize];
            *slot = (*slot).min(RiseFall::splat(at));
        };
        let mut seeded = false;
        for r in replicas {
            for out in [r.output_net, r.output_bar_net].into_iter().flatten() {
                if prep.cluster_passes[prep.graph.cluster_of(out).as_raw() as usize].contains(&p) {
                    let at = (prep.timeline.edge_time(r.assert_edge) - start).rem_euclid(overall);
                    seed(&mut early, out, at);
                    seeded = true;
                }
            }
        }
        for pi in &prep.pis {
            if prep.cluster_passes[prep.graph.cluster_of(pi.net).as_raw() as usize].contains(&p) {
                let at = (prep.timeline.edge_time(pi.edge) - start).rem_euclid(overall) + pi.offset;
                seed(&mut early, pi.net, at);
                seeded = true;
            }
        }
        if !seeded {
            continue;
        }
        propagate_ready_min(&prep.graph, &mut early);

        for (k, r) in replicas.iter().enumerate() {
            if prep.replica_pass[k] != p {
                continue;
            }
            let arrive = early[r.data_net.as_raw() as usize].best();
            if !arrive.is_finite() {
                continue;
            }
            // The element captures at `close`; the capture one period
            // earlier (this replica's predecessor, possibly the previous
            // overall cycle) happened at `close − T_β` *plus* the
            // control-path delay. New data arriving within the hold
            // window after that earlier capture races it.
            let close = (prep.timeline.edge_time(r.close_edge) - start).rem_euclid_end(overall);
            let prev_close = close - prep.replica_period[k];
            if arrive < close && arrive >= prev_close {
                let bound = prev_close + r.cdel() + r.hold();
                if arrive < bound {
                    violations.push(MinDelayViolation {
                        inst: prep
                            .design
                            .module(prep.module)
                            .instance(r.inst)
                            .name()
                            .to_owned(),
                        pulse: r.pulse_index,
                        shortfall: bound - arrive,
                    });
                }
            }
        }
    }
    violations
}
