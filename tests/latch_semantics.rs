//! Cross-crate checks of the transparent-latch semantics on real
//! library cells (sc89, with non-zero setup and element delays).

use hb_cells::sc89;
use hb_workloads::{latch_pipeline, random_pipeline, PipelineParams};
use hummingbird::{AnalysisOptions, Analyzer, LatchModel};

fn verdicts(period_ns: i64) -> (bool, bool) {
    let lib = sc89();
    let w = latch_pipeline(&lib, 6, 8, 11, period_ns);
    let transparent = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
        .expect("conforming workload")
        .analyze()
        .ok();
    let edge = Analyzer::with_options(
        &w.design,
        w.module,
        &lib,
        &w.clocks,
        w.spec.clone(),
        AnalysisOptions {
            latch_model: LatchModel::EdgeTriggered,
            ..AnalysisOptions::default()
        },
    )
    .expect("conforming workload")
    .analyze()
    .ok();
    (transparent, edge)
}

/// The transparent model's feasible clock set contains the
/// edge-triggered model's: whenever the baseline passes, so does the
/// paper's analysis (the trailing-edge position is one point of the
/// transparency window).
#[test]
fn transparent_subsumes_edge_triggered() {
    for period_ns in [10i64, 16, 24, 40, 80, 160] {
        let (transparent, edge) = verdicts(period_ns);
        assert!(
            !edge || transparent,
            "period {period_ns} ns: edge-triggered passes but transparent fails"
        );
    }
}

/// Somewhere in the sweep there is a crossover band where only the
/// transparent model closes timing — the paper's central motivation.
#[test]
fn borrowing_buys_a_faster_clock() {
    let found = [14i64, 16, 20, 24, 30, 36, 40].iter().any(|&p| {
        let (transparent, edge) = verdicts(p);
        transparent && !edge
    });
    assert!(
        found,
        "expected at least one period where only the transparent model passes"
    );
}

/// On a flip-flop-only design the latch model is irrelevant: both modes
/// must produce identical worst slacks.
#[test]
fn latch_model_is_a_no_op_for_flip_flops() {
    let lib = sc89();
    let w = random_pipeline(
        &lib,
        PipelineParams {
            stages: 3,
            width: 8,
            gates_per_stage: 100,
            transparent: false,
            period_ns: 20,
            seed: 9,
            imbalance_pct: 0,
        },
    );
    let a = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
        .expect("conforming workload")
        .analyze();
    let b = Analyzer::with_options(
        &w.design,
        w.module,
        &lib,
        &w.clocks,
        w.spec.clone(),
        AnalysisOptions {
            latch_model: LatchModel::EdgeTriggered,
            ..AnalysisOptions::default()
        },
    )
    .expect("conforming workload")
    .analyze();
    assert_eq!(a.worst_slack(), b.worst_slack());
    assert_eq!(a.ok(), b.ok());
}

/// On feasible designs Algorithm 1 stays within the paper's iteration
/// bound: each complete iteration takes at most one more cycle than the
/// number of synchronising elements along a directed path (here: the
/// number of latch banks plus the capture flops). On infeasible designs
/// our merged-slack variant may take more complete-backward cycles than
/// the paper's bound (node slacks merge over paths, so one cycle may
/// under-transfer), but must still terminate well under the safety cap.
#[test]
fn iteration_counts_stay_bounded() {
    let lib = sc89();
    let stages = 6;
    for period_ns in [16i64, 20, 30, 60] {
        let w = latch_pipeline(&lib, stages, 8, 11, period_ns);
        let report = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
            .expect("conforming workload")
            .analyze();
        assert!(report.ok(), "period {period_ns} is feasible");
        let s = report.algorithm1_stats();
        assert!(
            s.forward_cycles <= stages + 2 && s.backward_cycles <= stages + 2,
            "period {period_ns}: {s:?}"
        );
        assert!(!s.cycle_cap_hit);
    }
    for period_ns in [8i64, 10] {
        let w = latch_pipeline(&lib, stages, 8, 11, period_ns);
        let report = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
            .expect("conforming workload")
            .analyze();
        assert!(!report.ok(), "period {period_ns} is infeasible");
        let s = report.algorithm1_stats();
        assert!(!s.cycle_cap_hit, "period {period_ns}: {s:?}");
    }
}
