//! Fault-recovery benchmark: what a panic costs the daemon.
//!
//! Arms `session.eco.panic` so every ECO request panics mid-mutation,
//! forcing the transport through its journal-replay recovery (rebuild
//! a fresh session, replay `load` + `analyze`, transplant the salvaged
//! slack cache), and compares that against a cold `load` + `analyze`
//! of the same design. The recovery replays warm — untouched cluster
//! sweeps come from the salvaged cache — so it must come out at least
//! as cheap as the cold path. Writes `BENCH_fault.json`. Run with
//! `cargo run --release -p hb-bench --bin fault_bench`.

use std::fmt::Write as _;
use std::time::Instant;

use hb_cells::{sc89, Binding, Library};
use hb_fault::{Fault, FaultPlan};
use hb_io::Frame;
use hb_netlist::InstRef;
use hb_server::{directives_from_spec, Client, Server, ServerOptions};
use hb_workloads::{random_pipeline, PipelineParams, Workload};

const COLD_ITERS: usize = 5;
const RECOVERY_ITERS: usize = 10;

struct Latencies(Vec<f64>);

impl Latencies {
    fn measure(n: usize, mut f: impl FnMut()) -> Latencies {
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let start = Instant::now();
            f();
            samples.push(start.elapsed().as_secs_f64());
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        Latencies(samples)
    }

    fn p50(&self) -> f64 {
        self.0[self.0.len() / 2]
    }

    fn p99(&self) -> f64 {
        self.0[(self.0.len() * 99 / 100).min(self.0.len() - 1)]
    }
}

/// The first leaf instance with drive headroom — the resize target.
fn resizable_instance(w: &Workload, lib: &Library) -> String {
    let binding = Binding::new(&w.design, lib);
    let module = w.design.module(w.module);
    for (_, inst) in module.instances() {
        let InstRef::Leaf(leaf) = inst.target() else {
            continue;
        };
        let Some(cell) = binding.cell_for_leaf(leaf) else {
            continue;
        };
        let variants = lib.family_variants(lib.cell(cell).family());
        let pos = variants.iter().position(|&v| v == cell).expect("bound");
        if pos + 1 < variants.len() {
            return inst.name().to_owned();
        }
    }
    panic!("workload has no resizable instance");
}

fn expect_ok(reply: &Frame, what: &str) {
    assert_eq!(
        reply.verb,
        "ok",
        "{what} failed: {:?}",
        reply.payload.as_deref().unwrap_or("")
    );
}

fn main() {
    // The injected panics are the point; keep their backtraces out of
    // the bench output. Anything else still reports normally.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|s| s.contains("injected fault"));
        if !injected {
            default_hook(info);
        }
    }));

    let lib = sc89();
    // PIPE6x600L, the acceptance workload.
    let w = random_pipeline(
        &lib,
        PipelineParams {
            stages: 6,
            width: 16,
            gates_per_stage: 600,
            transparent: true,
            period_ns: 30,
            seed: 1203,
            imbalance_pct: 40,
        },
    );
    let text = hb_io::write_hum_with_timing(&w.design, &w.clocks, &directives_from_spec(&w.spec));
    let inst = resizable_instance(&w, &lib);

    // Every ECO panics mid-mutation; every reply is a recovery.
    let faults = FaultPlan::seeded(0xDAC89).armed(hb_fault::SESSION_ECO_PANIC, Fault::always());
    let options = ServerOptions {
        faults: faults.clone(),
        ..ServerOptions::default()
    };
    let server = Server::bind("127.0.0.1:0", lib.clone(), options).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let daemon = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");
    let mut request = |frame: &Frame| client.request(frame).expect("daemon reply");

    // Cold baseline: each load resets the resident cache, so the
    // analyze sweeps every cluster from scratch.
    let cold = Latencies::measure(COLD_ITERS, || {
        expect_ok(
            &request(&Frame::new("load").with_payload(text.clone())),
            "load",
        );
        expect_ok(&request(&Frame::new("analyze")), "cold analyze");
    });

    // Recovery: the injected panic throws the half-mutated session
    // away, replays the journal (load + analyze) into a fresh one, and
    // transplants the salvaged cache so the replayed analyze is warm.
    let mut replayed = 0u64;
    let recovery = Latencies::measure(RECOVERY_ITERS, || {
        let reply = request(
            &Frame::new("eco")
                .arg("op", "resize")
                .arg("inst", inst.clone())
                .arg("steps", 1),
        );
        assert_eq!(reply.verb, "error", "the armed ECO must panic");
        assert_eq!(
            reply.get("recovered"),
            Some("1"),
            "recovery failed: {:?}",
            reply.payload
        );
        replayed = reply.get("replayed").unwrap().parse().expect("count");
    });

    // Prove the recovered session still answers correctly.
    let check = request(&Frame::new("analyze"));
    expect_ok(&check, "post-recovery analyze");

    expect_ok(&request(&Frame::new("shutdown")), "shutdown");
    daemon.join().expect("server thread").expect("server exit");

    let panics = faults.fired(hb_fault::SESSION_ECO_PANIC);
    let ratio = recovery.p50() / cold.p50();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"workload\": \"{}\",", w.name);
    let _ = writeln!(json, "  \"cells\": {},", w.stats().cells);
    let _ = writeln!(json, "  \"injected_panics\": {panics},");
    let _ = writeln!(json, "  \"journal_entries_replayed\": {replayed},");
    let _ = writeln!(json, "  \"cold_load_analyze\": {{");
    let _ = writeln!(json, "    \"iters\": {COLD_ITERS},");
    let _ = writeln!(json, "    \"p50_ms\": {:.4},", cold.p50() * 1e3);
    let _ = writeln!(json, "    \"p99_ms\": {:.4}", cold.p99() * 1e3);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"journal_replay_recovery\": {{");
    let _ = writeln!(json, "    \"iters\": {RECOVERY_ITERS},");
    let _ = writeln!(json, "    \"p50_ms\": {:.4},", recovery.p50() * 1e3);
    let _ = writeln!(json, "    \"p99_ms\": {:.4}", recovery.p99() * 1e3);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"recovery_vs_cold_p50\": {ratio:.3}");
    json.push_str("}\n");

    eprintln!(
        "{}: cold load+analyze p50 {:.1} ms | panic recovery p50 {:.1} ms \
         ({replayed} entries replayed warm, ratio {ratio:.2})",
        w.name,
        cold.p50() * 1e3,
        recovery.p50() * 1e3,
    );
    if ratio > 1.0 {
        eprintln!("warning: recovery slower than cold load+analyze (ratio {ratio:.2})");
    }

    std::fs::write("BENCH_fault.json", &json).expect("write BENCH_fault.json");
    println!("{json}");
}
