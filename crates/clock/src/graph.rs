//! The clock-edge ordering graph and analysis-pass minimisation
//! (Section 7 of the paper, Figure 4).
//!
//! Cluster-level block analysis needs every ideal assertion time and
//! ideal closure time expressed against a single reference — the clock
//! period must be "broken open" into a linear window. A *requirement*
//! (one per cluster input→output combination with a connecting path)
//! states that the assertion edge must appear before the closure edge in
//! the window. No single break point satisfies all requirements in
//! general (Figure 1 of the paper needs two), so the analyzer selects a
//! **minimum set of break points** — one analysis pass each — such that
//! every requirement is satisfied in at least one pass.

use std::collections::HashSet;
use std::fmt;

use hb_units::Time;

use crate::timeline::{EdgeId, Timeline};

/// A clock-edge ordering requirement: `assert_edge` must appear strictly
/// before `close_edge` in some analysis window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Requirement {
    /// The ideal assertion edge of a cluster input.
    pub assert_edge: EdgeId,
    /// The ideal closure edge of a cluster output reachable from it.
    pub close_edge: EdgeId,
}

/// The selected set of analysis passes: one "broken open" clock period
/// per pass, identified by its window start time.
///
/// Within a pass starting at `s`, times are placed as
///
/// * assertion position `(t − s) mod T ∈ [0, T)`;
/// * closure position `((t − s − 1) mod T) + 1 ∈ (0, T]`,
///
/// so a closure edge coinciding with the window start lands at the *end*
/// of the window. Each cluster output is analyzed in the pass that places
/// its ideal closure time closest to the end ([`PassPlan::pass_for_closure`]);
/// that pass provably satisfies every requirement into the output that
/// any selected pass satisfies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassPlan {
    overall: Time,
    starts: Vec<Time>,
}

impl PassPlan {
    /// A single-pass plan with the given window start.
    pub fn single(overall: Time, start: Time) -> PassPlan {
        PassPlan {
            overall,
            starts: vec![start.rem_euclid(overall)],
        }
    }

    /// The overall period the windows span.
    pub fn overall_period(&self) -> Time {
        self.overall
    }

    /// The window start times, one per pass.
    pub fn starts(&self) -> &[Time] {
        &self.starts
    }

    /// The number of passes — the paper's "minimum number of settling
    /// times" that must be evaluated per node.
    pub fn pass_count(&self) -> usize {
        self.starts.len()
    }

    /// The position of an assertion time within pass `pass`, in `[0, T)`.
    ///
    /// # Panics
    ///
    /// Panics if `pass` is out of range.
    pub fn pos_assert(&self, pass: usize, time: Time) -> Time {
        (time - self.starts[pass]).rem_euclid(self.overall)
    }

    /// The position of a closure time within pass `pass`, in `(0, T]`.
    ///
    /// # Panics
    ///
    /// Panics if `pass` is out of range.
    pub fn pos_close(&self, pass: usize, time: Time) -> Time {
        (time - self.starts[pass]).rem_euclid_end(self.overall)
    }

    /// The pass in which a closure at `time` appears closest to the end
    /// of the window.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no passes.
    pub fn pass_for_closure(&self, time: Time) -> usize {
        assert!(!self.starts.is_empty(), "plan has no passes");
        (0..self.starts.len())
            .max_by_key(|&p| self.pos_close(p, time))
            .expect("non-empty")
    }

    /// Whether requirement `(assert_time, close_time)` is satisfied in
    /// pass `pass`.
    pub fn satisfies(&self, pass: usize, assert_time: Time, close_time: Time) -> bool {
        self.pos_close(pass, close_time) > self.pos_assert(pass, assert_time)
    }
}

/// The directed graph representing the cyclic sequence of clock edges,
/// with the pass-minimisation search.
#[derive(Clone, Debug)]
pub struct EdgeGraph<'a> {
    timeline: &'a Timeline,
    /// Candidate window starts: the distinct edge times. Breaking the
    /// cycle on the arc *into* an edge makes that edge's time the window
    /// start; arcs between simultaneous edges are equivalent and deduped.
    starts: Vec<Time>,
}

impl<'a> EdgeGraph<'a> {
    /// Builds the graph for a timeline.
    pub fn new(timeline: &'a Timeline) -> EdgeGraph<'a> {
        let mut starts: Vec<Time> = timeline.edges().map(|(_, e)| e.time).collect();
        starts.dedup();
        EdgeGraph { timeline, starts }
    }

    /// The timeline the graph was built from.
    pub fn timeline(&self) -> &Timeline {
        self.timeline
    }

    /// The candidate window-start times (one per removable arc, after
    /// merging arcs between simultaneous edges).
    pub fn candidate_starts(&self) -> &[Time] {
        &self.starts
    }

    /// Whether breaking the period at `start` satisfies `req`.
    pub fn start_satisfies(&self, start: Time, req: Requirement) -> bool {
        let overall = self.timeline.overall_period();
        let a = (self.timeline.edge_time(req.assert_edge) - start).rem_euclid(overall);
        let c = (self.timeline.edge_time(req.close_edge) - start).rem_euclid_end(overall);
        c > a
    }

    /// Finds a minimum-size set of passes covering all requirements.
    ///
    /// The search is exhaustive over subsets of size 1, 2 and 3 (the
    /// paper: "very seldom is it necessary to remove more than two
    /// arcs"); beyond that a greedy set cover finishes the job. With no
    /// requirements a single pass starting at the first edge is returned,
    /// so downstream analysis always has a window to work in.
    pub fn minimal_passes(&self, requirements: &[Requirement]) -> PassPlan {
        let overall = self.timeline.overall_period();
        let unique: Vec<Requirement> = {
            let mut seen = HashSet::new();
            requirements
                .iter()
                .copied()
                .filter(|r| seen.insert(*r))
                .collect()
        };
        if unique.is_empty() || self.starts.is_empty() {
            let first = self.starts.first().copied().unwrap_or(Time::ZERO);
            return PassPlan::single(overall, first);
        }

        // sat[c] = bitset over requirements satisfied by candidate c.
        let blocks = unique.len().div_ceil(64);
        let sat: Vec<Vec<u64>> = self
            .starts
            .iter()
            .map(|&s| {
                let mut bits = vec![0u64; blocks];
                for (i, &req) in unique.iter().enumerate() {
                    if self.start_satisfies(s, req) {
                        bits[i / 64] |= 1 << (i % 64);
                    }
                }
                bits
            })
            .collect();
        let full: Vec<u64> = (0..blocks)
            .map(|b| {
                let rem = unique.len() - b * 64;
                if rem >= 64 {
                    u64::MAX
                } else {
                    (1u64 << rem) - 1
                }
            })
            .collect();
        let covers = |chosen: &[usize]| -> bool {
            (0..blocks).all(|b| chosen.iter().fold(0u64, |acc, &c| acc | sat[c][b]) == full[b])
        };

        let n = self.starts.len();
        for i in 0..n {
            if covers(&[i]) {
                return PassPlan {
                    overall,
                    starts: vec![self.starts[i]],
                };
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if covers(&[i, j]) {
                    return PassPlan {
                        overall,
                        starts: vec![self.starts[i], self.starts[j]],
                    };
                }
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                for k in (j + 1)..n {
                    if covers(&[i, j, k]) {
                        return PassPlan {
                            overall,
                            starts: vec![self.starts[i], self.starts[j], self.starts[k]],
                        };
                    }
                }
            }
        }

        // Greedy fallback: always terminates because the break just after
        // each closure edge satisfies every requirement into it.
        let mut remaining = full.clone();
        let mut chosen: Vec<usize> = Vec::new();
        while remaining.iter().any(|&b| b != 0) {
            let best = (0..n)
                .filter(|c| !chosen.contains(c))
                .max_by_key(|&c| {
                    (0..blocks)
                        .map(|b| (sat[c][b] & remaining[b]).count_ones())
                        .sum::<u32>()
                })
                .expect("candidates remain while requirements do");
            let gained: u32 = (0..blocks)
                .map(|b| (sat[best][b] & remaining[b]).count_ones())
                .sum();
            assert!(gained > 0, "every requirement is satisfiable by some break");
            for b in 0..blocks {
                remaining[b] &= !sat[best][b];
            }
            chosen.push(best);
        }
        PassPlan {
            overall,
            starts: chosen.into_iter().map(|c| self.starts[c]).collect(),
        }
    }
}

impl fmt::Display for EdgeGraph<'_> {
    /// Prints the cyclic edge order in the style of Figure 4(b).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "clock edge graph (overall period {}):",
            self.timeline.overall_period()
        )?;
        let edges: Vec<_> = self.timeline.edges().collect();
        for (i, (id, edge)) in edges.iter().enumerate() {
            let next = &edges[(i + 1) % edges.len()];
            writeln!(f, "  {id} ({edge}) -> {}", next.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockSet;
    use hb_units::Transition;

    /// Four evenly spaced phases of a 100 ns clock, Figure 1 style.
    fn four_phase() -> ClockSet {
        let mut set = ClockSet::new();
        for (i, name) in ["p1", "p2", "p3", "p4"].iter().enumerate() {
            let start = Time::from_ns(25 * i as i64);
            set.add_clock(*name, Time::from_ns(100), start, start + Time::from_ns(10))
                .unwrap();
        }
        set
    }

    fn edge(tl: &Timeline, clock: u32, pol: Transition, ns: i64) -> EdgeId {
        tl.find_edge(crate::ClockId(clock), pol, Time::from_ns(ns))
            .expect("edge exists")
    }

    #[test]
    fn no_requirements_yields_one_pass() {
        let set = four_phase();
        let tl = set.timeline();
        let graph = EdgeGraph::new(&tl);
        let plan = graph.minimal_passes(&[]);
        assert_eq!(plan.pass_count(), 1);
    }

    #[test]
    fn forward_chain_is_single_pass() {
        let set = four_phase();
        let tl = set.timeline();
        let graph = EdgeGraph::new(&tl);
        // p1 leading -> p2 trailing, p2 leading -> p3 trailing.
        let reqs = vec![
            Requirement {
                assert_edge: edge(&tl, 0, Transition::Rise, 0),
                close_edge: edge(&tl, 1, Transition::Fall, 35),
            },
            Requirement {
                assert_edge: edge(&tl, 1, Transition::Rise, 25),
                close_edge: edge(&tl, 2, Transition::Fall, 60),
            },
        ];
        let plan = graph.minimal_passes(&reqs);
        assert_eq!(plan.pass_count(), 1);
        for r in &reqs {
            let p = plan.pass_for_closure(tl.edge_time(r.close_edge));
            assert!(plan.satisfies(p, tl.edge_time(r.assert_edge), tl.edge_time(r.close_edge)));
        }
    }

    #[test]
    fn figure1_wraparound_needs_two_passes() {
        // The Figure 1 situation: a gate with inputs from latches on p1
        // and p3 and outputs captured by latches on p2 and p4 is "time
        // multiplexed within each overall clock period". The cluster
        // generates all four input→output combinations, and in
        // particular "p3-asserted data before the (wrapping) next p2
        // trailing edge" conflicts with "p1-asserted data before the p2
        // trailing edge" in any single window.
        let set = four_phase();
        let tl = set.timeline();
        let graph = EdgeGraph::new(&tl);
        let p1_lead = edge(&tl, 0, Transition::Rise, 0);
        let p3_lead = edge(&tl, 2, Transition::Rise, 50);
        let p2_trail = edge(&tl, 1, Transition::Fall, 35);
        let p4_trail = edge(&tl, 3, Transition::Fall, 85);
        let mut reqs = Vec::new();
        for a in [p1_lead, p3_lead] {
            for c in [p2_trail, p4_trail] {
                reqs.push(Requirement {
                    assert_edge: a,
                    close_edge: c,
                });
            }
        }
        let plan = graph.minimal_passes(&reqs);
        assert_eq!(plan.pass_count(), 2, "paper: two cluster analysis passes");
        for r in &reqs {
            let p = plan.pass_for_closure(tl.edge_time(r.close_edge));
            assert!(
                plan.satisfies(p, tl.edge_time(r.assert_edge), tl.edge_time(r.close_edge)),
                "closure-latest pass must satisfy {r:?}"
            );
        }
    }

    #[test]
    fn same_edge_requirement_gets_full_period() {
        // FF -> FF on the same clock edge: the break just after the edge
        // puts the closure at the end of the window.
        let mut set = ClockSet::new();
        set.add_clock("ck", Time::from_ns(20), Time::ZERO, Time::from_ns(10))
            .unwrap();
        let tl = set.timeline();
        let graph = EdgeGraph::new(&tl);
        let rise = edge(&tl, 0, Transition::Rise, 0);
        let req = Requirement {
            assert_edge: rise,
            close_edge: rise,
        };
        let plan = graph.minimal_passes(&[req]);
        assert_eq!(plan.pass_count(), 1);
        let p = plan.pass_for_closure(tl.edge_time(rise));
        assert_eq!(plan.pos_close(p, tl.edge_time(rise)), Time::from_ns(20));
        assert_eq!(plan.pos_assert(p, tl.edge_time(rise)), Time::ZERO);
        assert!(plan.satisfies(p, Time::ZERO, Time::ZERO));
    }

    #[test]
    fn pass_positions_are_well_formed() {
        let set = four_phase();
        let tl = set.timeline();
        let graph = EdgeGraph::new(&tl);
        let plan = graph.minimal_passes(&[]);
        let overall = tl.overall_period();
        for (_, e) in tl.edges() {
            let a = plan.pos_assert(0, e.time);
            let c = plan.pos_close(0, e.time);
            assert!(Time::ZERO <= a && a < overall);
            assert!(Time::ZERO < c && c <= overall);
            // Positions agree except at the window boundary.
            assert!(c == a || (a == Time::ZERO && c == overall));
        }
    }

    #[test]
    fn every_requirement_is_always_coverable() {
        // Adversarial set: all ordered pairs of edges as requirements.
        let set = four_phase();
        let tl = set.timeline();
        let graph = EdgeGraph::new(&tl);
        let ids: Vec<EdgeId> = tl.edges().map(|(id, _)| id).collect();
        let mut reqs = Vec::new();
        for &a in &ids {
            for &c in &ids {
                reqs.push(Requirement {
                    assert_edge: a,
                    close_edge: c,
                });
            }
        }
        let plan = graph.minimal_passes(&reqs);
        for r in &reqs {
            let found = (0..plan.pass_count()).any(|p| {
                plan.satisfies(p, tl.edge_time(r.assert_edge), tl.edge_time(r.close_edge))
            });
            assert!(found, "requirement {r:?} uncovered");
            // And specifically the closure-latest pass covers it.
            let p = plan.pass_for_closure(tl.edge_time(r.close_edge));
            assert!(plan.satisfies(p, tl.edge_time(r.assert_edge), tl.edge_time(r.close_edge)));
        }
    }

    #[test]
    fn display_shows_cycle() {
        let set = four_phase();
        let tl = set.timeline();
        let graph = EdgeGraph::new(&tl);
        let text = graph.to_string();
        assert!(text.contains("e0"));
        assert!(text.contains("->"));
    }
}
