//! Empirical delay models.

use hb_units::{MinMax, RiseFall, Time};

/// The load-dependent linear delay expression used for every timing arc:
///
/// ```text
/// d_max(tr) = intrinsic[tr] + slope_ps_per_ff[tr] · load_ff
/// d_min(tr) = d_max(tr) · min_scale_pct / 100
/// ```
///
/// where `tr` is the **output** transition direction and `load_ff` is the
/// capacitive load on the driven net in femtofarads. This is the
/// "empirical delay estimation formula" form the paper uses for standard
/// cells; the minimum (contamination) delay feeds the supplementary path
/// constraints.
///
/// # Examples
///
/// ```
/// use hb_cells::DelayModel;
/// use hb_units::{RiseFall, Time, Transition};
///
/// let model = DelayModel::new(
///     RiseFall::new(Time::from_ps(120), Time::from_ps(90)),
///     RiseFall::new(6, 4),
/// );
/// let d = model.eval(10); // 10 fF of load
/// assert_eq!(d.max[Transition::Rise], Time::from_ps(180));
/// assert_eq!(d.min[Transition::Rise], Time::from_ps(90));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DelayModel {
    intrinsic: RiseFall<Time>,
    slope_ps_per_ff: RiseFall<i64>,
    min_scale_pct: u8,
}

impl DelayModel {
    /// Creates a model with the default 50% min-delay scale.
    pub fn new(intrinsic: RiseFall<Time>, slope_ps_per_ff: RiseFall<i64>) -> DelayModel {
        DelayModel {
            intrinsic,
            slope_ps_per_ff,
            min_scale_pct: 50,
        }
    }

    /// Creates a model with symmetric rise/fall behaviour.
    pub fn symmetric(intrinsic: Time, slope_ps_per_ff: i64) -> DelayModel {
        DelayModel::new(RiseFall::splat(intrinsic), RiseFall::splat(slope_ps_per_ff))
    }

    /// A zero-delay model (ideal wires, test fixtures).
    pub fn zero() -> DelayModel {
        DelayModel::symmetric(Time::ZERO, 0)
    }

    /// Overrides the minimum-delay scale (percent of the maximum delay).
    ///
    /// # Panics
    ///
    /// Panics if `pct > 100`.
    pub fn with_min_scale_pct(mut self, pct: u8) -> DelayModel {
        assert!(pct <= 100, "min scale is a percentage of the max delay");
        self.min_scale_pct = pct;
        self
    }

    /// The zero-load (intrinsic) delay.
    pub fn intrinsic(&self) -> RiseFall<Time> {
        self.intrinsic
    }

    /// The load slope in picoseconds per femtofarad.
    pub fn slope_ps_per_ff(&self) -> RiseFall<i64> {
        self.slope_ps_per_ff
    }

    /// The minimum-delay scale as a percentage of the maximum delay.
    pub fn min_scale_pct(&self) -> u8 {
        self.min_scale_pct
    }

    /// Evaluates the model at `load_ff` femtofarads.
    ///
    /// # Panics
    ///
    /// Panics if `load_ff` is negative.
    pub fn eval(&self, load_ff: i64) -> MinMax<RiseFall<Time>> {
        assert!(load_ff >= 0, "capacitive load cannot be negative");
        let max = self
            .intrinsic
            .zip_with(self.slope_ps_per_ff, |i, s| i + Time::from_ps(s * load_ff));
        let min = max.map(|t| Time::from_ps(t.as_ps() * i64::from(self.min_scale_pct) / 100));
        MinMax { min, max }
    }

    /// Returns a copy with every delay scaled to `pct` percent — the
    /// "adjustments may also be made to component delays" knob of the
    /// paper's interactive mode (derating for slow corners, or
    /// what-if speedups below 100).
    ///
    /// Scaling rounds *up*, so derating never optimistically shortens a
    /// delay.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is zero.
    pub fn derated(&self, pct: u32) -> DelayModel {
        assert!(pct > 0, "a zero derate would erase all delays");
        let scale = |t: Time| Time::from_ps((t.as_ps() * i64::from(pct)).div_euclid(100));
        DelayModel {
            intrinsic: self.intrinsic.map(scale),
            slope_ps_per_ff: self
                .slope_ps_per_ff
                .map(|s| (s * i64::from(pct)).div_euclid(100)),
            min_scale_pct: self.min_scale_pct,
        }
    }

    /// Returns a copy scaled for a stronger drive: intrinsic unchanged,
    /// slope divided by `factor` (a ×4 driver sees a quarter of the
    /// per-load delay).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn scaled_drive(&self, factor: i64) -> DelayModel {
        assert!(factor > 0, "drive factor must be positive");
        DelayModel {
            intrinsic: self.intrinsic,
            slope_ps_per_ff: self.slope_ps_per_ff.map(|s| (s + factor - 1) / factor),
            min_scale_pct: self.min_scale_pct,
        }
    }
}

/// The net-capacitance estimate added on top of pin loads.
///
/// `load(net) = Σ sink-pin caps + base_ff + per_fanout_ff · fanout` — the
/// classic pre-layout fanout-based wire load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireLoad {
    /// Fixed capacitance per net.
    pub base_ff: i64,
    /// Additional capacitance per load endpoint.
    pub per_fanout_ff: i64,
}

impl WireLoad {
    /// Creates a wire-load estimate.
    pub fn new(base_ff: i64, per_fanout_ff: i64) -> WireLoad {
        WireLoad {
            base_ff,
            per_fanout_ff,
        }
    }

    /// The estimated wire capacitance for a net with `fanout` loads.
    pub fn wire_cap_ff(&self, fanout: usize) -> i64 {
        self.base_ff + self.per_fanout_ff * fanout as i64
    }
}

impl Default for WireLoad {
    /// A small pre-layout estimate: 2 fF per net plus 3 fF per fanout.
    fn default() -> WireLoad {
        WireLoad::new(2, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_units::Transition;

    #[test]
    fn eval_is_linear_in_load() {
        let m = DelayModel::new(
            RiseFall::new(Time::from_ps(100), Time::from_ps(80)),
            RiseFall::new(5, 3),
        );
        let d0 = m.eval(0);
        let d10 = m.eval(10);
        assert_eq!(d0.max[Transition::Rise], Time::from_ps(100));
        assert_eq!(d10.max[Transition::Rise], Time::from_ps(150));
        assert_eq!(d10.max[Transition::Fall], Time::from_ps(110));
        assert!(d10.min[Transition::Rise] < d10.max[Transition::Rise]);
    }

    #[test]
    fn min_scale() {
        let m = DelayModel::symmetric(Time::from_ps(100), 0).with_min_scale_pct(100);
        let d = m.eval(0);
        assert_eq!(d.min, d.max);
        let m = DelayModel::symmetric(Time::from_ps(100), 0).with_min_scale_pct(0);
        assert_eq!(m.eval(0).min[Transition::Fall], Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "capacitive load cannot be negative")]
    fn negative_load_panics() {
        let _ = DelayModel::zero().eval(-1);
    }

    #[test]
    fn scaled_drive_reduces_slope_only() {
        let m = DelayModel::symmetric(Time::from_ps(100), 8);
        let s = m.scaled_drive(4);
        assert_eq!(s.intrinsic(), m.intrinsic());
        assert_eq!(s.slope_ps_per_ff(), RiseFall::splat(2));
        // Rounds up so a strong driver is never optimistically fast.
        let odd = DelayModel::symmetric(Time::ZERO, 5).scaled_drive(2);
        assert_eq!(odd.slope_ps_per_ff(), RiseFall::splat(3));
    }

    #[test]
    fn wire_load() {
        let w = WireLoad::new(2, 3);
        assert_eq!(w.wire_cap_ff(0), 2);
        assert_eq!(w.wire_cap_ff(4), 14);
        assert_eq!(WireLoad::default(), WireLoad::new(2, 3));
    }
}
