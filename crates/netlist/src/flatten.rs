//! Hierarchy elaboration: producing a flat, single-module design.
//!
//! The paper analyzes both flattened networks of standard cells (SM1F)
//! and hierarchical descriptions (SM1H). Flattening lets the test-suite
//! check that hierarchical analysis is a conservative abstraction of the
//! flat analysis, and gives the workload generators a single code path.

use crate::design::Design;
use crate::error::NetlistError;
use crate::ids::{ModuleId, NetId, PinSlot};
use crate::module::InstRef;

impl Design {
    /// Produces a new single-module design in which every hierarchical
    /// instance under `root` has been inlined.
    ///
    /// Instance and net names are joined with `/` (`"u3/add/carry"`), the
    /// convention the Berkeley tools used for hierarchical paths. Leaf
    /// definitions are copied verbatim, so [`crate::LeafId`]s remain
    /// valid across the flattening.
    ///
    /// # Errors
    ///
    /// Returns an error if a child-module net is bound to more than one
    /// port (net aliasing through feed-throughs is not supported) or if
    /// the hierarchy is recursive.
    pub fn flatten(&self, root: ModuleId) -> Result<Design, NetlistError> {
        let mut out = Design::new(format!("{}_flat", self.module(root).name()));
        for (_, def) in self.leaves() {
            out.declare_leaf(def.clone())?;
        }
        let flat = out.add_module(self.module(root).name().to_owned())?;
        // Root nets are created without a prefix; ports re-attach to them.
        let no_binding: Vec<Option<NetId>> = vec![None; self.module(root).ports().count()];
        let root_nets = inline(self, &mut out, flat, root, "", &no_binding)?;
        for (_, port) in self.module(root).ports() {
            let net =
                root_nets[port.net().as_raw() as usize].expect("root nets are always materialized");
            out.add_port(flat, port.name().to_owned(), port.dir(), net)?;
        }
        out.set_top(flat)?;
        Ok(out)
    }
}

/// Inlines `src_m` (from `src`) into `out_m` (in `out`), with `prefix`
/// prepended to every created name. `port_binding[slot]` gives the parent
/// net already materialized for the child's port `slot`, if any.
///
/// Returns the mapping from `src_m` net ids to materialized net ids.
fn inline(
    src: &Design,
    out: &mut Design,
    out_m: ModuleId,
    src_m: ModuleId,
    prefix: &str,
    port_binding: &[Option<NetId>],
) -> Result<Vec<Option<NetId>>, NetlistError> {
    let module = src.module(src_m);

    // Map each net: through a port when bound, otherwise a fresh net.
    let mut net_map: Vec<Option<NetId>> = vec![None; module.net_count()];
    for (port_id, port) in module.ports() {
        if let Some(parent_net) = port_binding[port_id.as_raw() as usize] {
            let slot = port.net().as_raw() as usize;
            match net_map[slot] {
                None => net_map[slot] = Some(parent_net),
                Some(existing) if existing == parent_net => {}
                Some(_) => {
                    return Err(NetlistError::InterfaceMismatch {
                        inst: format!("{prefix}{}", module.name()),
                        detail: format!(
                            "net {:?} is bound to multiple ports (feed-through aliasing)",
                            module.net(port.net()).name()
                        ),
                    })
                }
            }
        }
    }
    for (net_id, net) in module.nets() {
        if net_map[net_id.as_raw() as usize].is_none() {
            let id = out.add_net(out_m, format!("{prefix}{}", net.name()))?;
            net_map[net_id.as_raw() as usize] = Some(id);
        }
    }

    for (inst_id, inst) in module.instances() {
        match inst.target() {
            InstRef::Leaf(leaf) => {
                let new_id =
                    out.add_leaf_instance(out_m, format!("{prefix}{}", inst.name()), leaf)?;
                for (slot, net) in inst.conns() {
                    let mapped = net_map[net.as_raw() as usize].expect("all nets mapped");
                    out.connect_slot(out_m, new_id, slot, mapped);
                }
                for (k, v) in inst.attrs() {
                    out.module_mut(out_m).set_instance_attr(new_id, k, v);
                }
            }
            InstRef::Module(child) => {
                let child_ports = src.module(child).ports().count();
                let binding: Vec<Option<NetId>> = (0..child_ports)
                    .map(|slot| {
                        inst.conn(PinSlot::from_raw(slot as u32))
                            .map(|net| net_map[net.as_raw() as usize].expect("mapped"))
                    })
                    .collect();
                let child_prefix = format!("{prefix}{}/", inst.name());
                inline(src, out, out_m, child, &child_prefix, &binding)?;
                let _ = inst_id;
            }
        }
    }
    Ok(net_map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leaf::{LeafDef, PinDir};

    /// Two-level hierarchy: top has an INV and two instances of `pair`,
    /// each containing two INVs in series.
    fn hierarchical() -> (Design, ModuleId) {
        let mut d = Design::new("h");
        let inv = d
            .declare_leaf(
                LeafDef::new("INV")
                    .pin("A", PinDir::Input)
                    .pin("Y", PinDir::Output),
            )
            .unwrap();

        let pair = d.add_module("pair").unwrap();
        let pi = d.add_net(pair, "in").unwrap();
        let mid = d.add_net(pair, "mid").unwrap();
        let po = d.add_net(pair, "out").unwrap();
        d.add_port(pair, "in", PinDir::Input, pi).unwrap();
        d.add_port(pair, "out", PinDir::Output, po).unwrap();
        let g1 = d.add_leaf_instance(pair, "g1", inv).unwrap();
        let g2 = d.add_leaf_instance(pair, "g2", inv).unwrap();
        d.connect(pair, g1, "A", pi).unwrap();
        d.connect(pair, g1, "Y", mid).unwrap();
        d.connect(pair, g2, "A", mid).unwrap();
        d.connect(pair, g2, "Y", po).unwrap();

        let top = d.add_module("top").unwrap();
        let a = d.add_net(top, "a").unwrap();
        let b = d.add_net(top, "b").unwrap();
        let c = d.add_net(top, "c").unwrap();
        let y = d.add_net(top, "y").unwrap();
        d.add_port(top, "a", PinDir::Input, a).unwrap();
        d.add_port(top, "y", PinDir::Output, y).unwrap();
        let p0 = d.add_module_instance(top, "p0", pair).unwrap();
        let p1 = d.add_module_instance(top, "p1", pair).unwrap();
        let u = d.add_leaf_instance(top, "u", inv).unwrap();
        d.connect(top, p0, "in", a).unwrap();
        d.connect(top, p0, "out", b).unwrap();
        d.connect(top, u, "A", b).unwrap();
        d.connect(top, u, "Y", c).unwrap();
        d.connect(top, p1, "in", c).unwrap();
        d.connect(top, p1, "out", y).unwrap();
        d.set_top(top).unwrap();
        (d, top)
    }

    #[test]
    fn flatten_counts_match_stats() {
        let (d, top) = hierarchical();
        d.validate().unwrap();
        let stats = d.stats(top);
        let flat = d.flatten(top).unwrap();
        flat.validate().unwrap();
        let ftop = flat.top().unwrap();
        assert_eq!(flat.module(ftop).instance_count(), stats.cells);
        assert_eq!(flat.module(ftop).net_count(), stats.nets);
        assert_eq!(flat.stats(ftop).depth, 0);
    }

    #[test]
    fn flatten_uses_hierarchical_names() {
        let (d, top) = hierarchical();
        let flat = d.flatten(top).unwrap();
        let m = flat.module(flat.top().unwrap());
        assert!(m.instance_by_name("p0/g1").is_some());
        assert!(m.instance_by_name("p1/g2").is_some());
        assert!(m.instance_by_name("u").is_some());
        assert!(m.net_by_name("p0/mid").is_some());
        // Port-bound child nets alias parent nets; no "p0/in" is created.
        assert!(m.net_by_name("p0/in").is_none());
    }

    #[test]
    fn flatten_preserves_connectivity() {
        let (d, top) = hierarchical();
        let flat = d.flatten(top).unwrap();
        let mid = flat.top().unwrap();
        let m = flat.module(mid);
        // Chain: a -> p0/g1 -> p0/mid -> p0/g2 -> b -> u -> c -> p1/g1 ...
        let b = m.net_by_name("b").unwrap();
        let driver = m.driver(b).unwrap();
        match driver {
            crate::module::Endpoint::Pin { inst, .. } => {
                assert_eq!(m.instance(inst).name(), "p0/g2");
            }
            other => panic!("unexpected driver {other:?}"),
        }
        assert_eq!(m.fanout(b), 1);
    }

    #[test]
    fn flatten_preserves_ports() {
        let (d, top) = hierarchical();
        let flat = d.flatten(top).unwrap();
        let m = flat.module(flat.top().unwrap());
        assert_eq!(m.ports().count(), 2);
        assert!(m.port_by_name("a").is_some());
        assert_eq!(m.port(m.port_by_name("y").unwrap()).dir(), PinDir::Output);
    }
}
