//! The paper's headline metric: "the minimum number of settling times
//! are evaluated for the nodes of combinational networks with input
//! transitions controlled by different clock signals" — and "even when
//! combinational logic inputs come from latches controlled by two or
//! three different clock phases, a single settling time is often
//! sufficient".
//!
//! Reports, per workload, how many analysis passes (settling times per
//! node) the pre-processing planned, against the naive
//! one-pass-per-clock-edge alternative.

use hb_cells::sc89;
use hb_workloads::{alu, des_like, figure1, fsm12, latch_pipeline, Workload};
use hummingbird::Analyzer;

fn main() {
    let lib = sc89();
    let workloads: Vec<Workload> = vec![
        des_like(&lib, 1989),
        alu(&lib, 7),
        fsm12(&lib, true),
        fsm12(&lib, false),
        latch_pipeline(&lib, 6, 8, 11, 20),
        figure1(&lib),
    ];
    println!("Settling times per node (analysis passes) vs the naive scheme");
    println!(
        "{:<12} {:>8} {:>8} {:>10} {:>12} {:>14}",
        "Example", "clocks", "edges", "max/node", "windows", "naive (edges)"
    );
    for w in workloads {
        let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
            .expect("conforming workload");
        let stats = analyzer.prep_stats();
        let edges = w.clocks.timeline().edge_count();
        println!(
            "{:<12} {:>8} {:>8} {:>10} {:>12} {:>14}",
            w.name,
            w.clocks.len(),
            edges,
            stats.max_cluster_passes,
            stats.global_passes,
            edges
        );
    }
    println!();
    println!("single-clock designs need exactly 1 settling time per node; the");
    println!("two-phase latch pipeline needs 1; only the four-phase time-");
    println!("multiplexed Figure-1 cluster needs 2 — matching the paper's claim");
    println!("that one settling time is usually enough and the minimum is found.");
}
