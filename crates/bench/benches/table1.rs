//! Micro-benchmark version of the Table 1 reproduction: pre-processing
//! and analysis time per evaluation design.

use hb_bench::microbench::bench;
use hb_cells::sc89;
use hb_workloads::{alu, des_like, fsm12, Workload};
use hummingbird::Analyzer;

fn workloads() -> Vec<Workload> {
    let lib = sc89();
    vec![
        des_like(&lib, 1989),
        alu(&lib, 7),
        fsm12(&lib, true),
        fsm12(&lib, false),
    ]
}

fn main() {
    let lib = sc89();
    for w in workloads() {
        bench(&format!("table1/preprocessing/{}", w.name), 1, 10, || {
            Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
                .expect("conforming workload")
        });
    }
    for w in workloads() {
        let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
            .expect("conforming workload");
        bench(&format!("table1/analysis/{}", w.name), 1, 10, || {
            analyzer.analyze()
        });
    }
}
