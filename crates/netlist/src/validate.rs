//! Design-rule validation.

use std::collections::HashSet;

use crate::design::Design;
use crate::error::NetlistError;
use crate::ids::ModuleId;
use crate::leaf::PinDir;
use crate::module::{Endpoint, InstRef};

impl Design {
    /// Checks the whole design against the database design rules.
    ///
    /// Rules:
    ///
    /// * a top module is set;
    /// * the module hierarchy is acyclic;
    /// * every net reachable from the top has exactly one driver;
    /// * every *input* pin of every instance is connected (unloaded
    ///   outputs are permitted — synthesis intermediates often have
    ///   them).
    ///
    /// # Errors
    ///
    /// Returns the first violated rule.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let top = self.top().ok_or(NetlistError::NoTop)?;
        self.check_acyclic(top)?;
        let mut seen = HashSet::new();
        self.validate_module_rec(top, &mut seen)
    }

    fn check_acyclic(&self, root: ModuleId) -> Result<(), NetlistError> {
        // Colors: 0 = white, 1 = on stack, 2 = done.
        fn visit(design: &Design, m: ModuleId, colors: &mut Vec<u8>) -> Result<(), NetlistError> {
            match colors[m.as_raw() as usize] {
                1 => {
                    return Err(NetlistError::RecursiveHierarchy {
                        module: design.module(m).name().to_owned(),
                    })
                }
                2 => return Ok(()),
                _ => {}
            }
            colors[m.as_raw() as usize] = 1;
            for (_, inst) in design.module(m).instances() {
                if let InstRef::Module(child) = inst.target() {
                    visit(design, child, colors)?;
                }
            }
            colors[m.as_raw() as usize] = 2;
            Ok(())
        }
        let mut colors = vec![0u8; self.modules().count()];
        visit(self, root, &mut colors)
    }

    fn validate_module_rec(
        &self,
        id: ModuleId,
        seen: &mut HashSet<ModuleId>,
    ) -> Result<(), NetlistError> {
        if !seen.insert(id) {
            return Ok(());
        }
        let m = self.module(id);
        for (net_id, net) in m.nets() {
            let mut drivers = 0usize;
            for ep in net.endpoints() {
                let drives = match ep {
                    Endpoint::Pin { dir, .. } => *dir == PinDir::Output,
                    Endpoint::Port(p) => m.port(*p).dir() == PinDir::Input,
                };
                if drives {
                    drivers += 1;
                }
            }
            match drivers {
                0 => {
                    return Err(NetlistError::UndrivenNet {
                        module: m.name().to_owned(),
                        net: net.name().to_owned(),
                    })
                }
                1 => {}
                _ => {
                    return Err(NetlistError::MultipleDrivers {
                        module: m.name().to_owned(),
                        net: net.name().to_owned(),
                    })
                }
            }
            let _ = net_id;
        }
        for (inst_id, inst) in m.instances() {
            for slot in 0..inst.pin_count() {
                let slot = crate::ids::PinSlot::from_raw(slot as u32);
                if inst.conn(slot).is_none() && self.pin_dir(id, inst_id, slot) == PinDir::Input {
                    return Err(NetlistError::DanglingInput {
                        module: m.name().to_owned(),
                        inst: inst.name().to_owned(),
                        pin: self.pin_name(id, inst_id, slot).to_owned(),
                    });
                }
            }
            if let InstRef::Module(child) = inst.target() {
                self.validate_module_rec(child, seen)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leaf::LeafDef;

    fn base() -> (Design, crate::LeafId, ModuleId) {
        let mut d = Design::new("v");
        let inv = d
            .declare_leaf(
                LeafDef::new("INV")
                    .pin("A", PinDir::Input)
                    .pin("Y", PinDir::Output),
            )
            .unwrap();
        let m = d.add_module("top").unwrap();
        d.set_top(m).unwrap();
        (d, inv, m)
    }

    #[test]
    fn valid_design_passes() {
        let (mut d, inv, m) = base();
        let a = d.add_net(m, "a").unwrap();
        let y = d.add_net(m, "y").unwrap();
        d.add_port(m, "a", PinDir::Input, a).unwrap();
        d.add_port(m, "y", PinDir::Output, y).unwrap();
        let u = d.add_leaf_instance(m, "u", inv).unwrap();
        d.connect(m, u, "A", a).unwrap();
        d.connect(m, u, "Y", y).unwrap();
        d.validate().unwrap();
    }

    #[test]
    fn no_top_fails() {
        let d = Design::new("x");
        assert_eq!(d.validate(), Err(NetlistError::NoTop));
    }

    #[test]
    fn undriven_net_fails() {
        let (mut d, inv, m) = base();
        let a = d.add_net(m, "a").unwrap();
        let u = d.add_leaf_instance(m, "u", inv).unwrap();
        d.connect(m, u, "A", a).unwrap();
        assert!(matches!(
            d.validate(),
            Err(NetlistError::UndrivenNet { .. })
        ));
    }

    #[test]
    fn multiple_drivers_fail() {
        let (mut d, inv, m) = base();
        let a = d.add_net(m, "a").unwrap();
        let y = d.add_net(m, "y").unwrap();
        d.add_port(m, "a", PinDir::Input, a).unwrap();
        let u1 = d.add_leaf_instance(m, "u1", inv).unwrap();
        let u2 = d.add_leaf_instance(m, "u2", inv).unwrap();
        d.connect(m, u1, "A", a).unwrap();
        d.connect(m, u1, "Y", y).unwrap();
        d.connect(m, u2, "A", a).unwrap();
        d.connect(m, u2, "Y", y).unwrap();
        assert!(matches!(
            d.validate(),
            Err(NetlistError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn dangling_input_fails_but_dangling_output_is_ok() {
        let (mut d, inv, m) = base();
        let a = d.add_net(m, "a").unwrap();
        d.add_port(m, "a", PinDir::Input, a).unwrap();
        let u = d.add_leaf_instance(m, "u", inv).unwrap();
        d.connect(m, u, "A", a).unwrap();
        // Y left dangling: allowed.
        d.validate().unwrap();
        let v = d.add_leaf_instance(m, "v", inv).unwrap();
        let y = d.add_net(m, "y").unwrap();
        d.connect(m, v, "Y", y).unwrap();
        // A left dangling: rejected.
        assert!(matches!(
            d.validate(),
            Err(NetlistError::DanglingInput { .. })
        ));
    }

    #[test]
    fn recursive_hierarchy_fails() {
        let (mut d, _inv, m) = base();
        let child = d.add_module("child").unwrap();
        // child instantiates top, top instantiates child.
        d.add_module_instance(child, "t", m).unwrap();
        d.add_module_instance(m, "c", child).unwrap();
        assert!(matches!(
            d.validate(),
            Err(NetlistError::RecursiveHierarchy { .. })
        ));
    }
}
