//! The native `.hum` structural format.
//!
//! ```text
//! # comment
//! design <name>
//! module <name>
//!   port in <net>...
//!   port out <net>...
//!   inst <inst-name> <cell-or-module> <pin>=<net>...
//! end
//! top <name>
//! clock <name> period <time> rise <time> fall <time>
//! clockport <port> <clock>
//! arrive <port> <clock> <rise|fall>[@<occurrence>] <offset>
//! require <port> <clock> <rise|fall>[@<occurrence>] <offset>
//! ```
//!
//! Nets are created implicitly on first reference. Child modules must be
//! defined before they are instantiated (the writer emits them in
//! dependency order). Times accept the `hb-units` syntax (`40ns`,
//! `2.5ns`, `250ps`).

use std::fmt::Write as _;

use hb_cells::Library;
use hb_clock::ClockSet;
use hb_netlist::{Design, InstRef, ModuleId, NetId, PinDir};
use hb_units::{Time, Transition};

use crate::error::ParseError;

/// A reference to a clock edge in a timing directive:
/// `(clock name, transition, occurrence)`.
pub type EdgeRef = (String, Transition, u32);

/// One boundary-timing directive from a `.hum` file.
///
/// The I/O layer stays below the analyzer, so directives are plain
/// data; drivers convert them into a [`hummingbird
/// Spec`](https://docs.rs) equivalent.
#[derive(Clone, Debug, PartialEq)]
pub enum TimingDirective {
    /// `clockport <port> <clock>` — the module port carrying a clock.
    ClockPort {
        /// The port name.
        port: String,
        /// The clock name.
        clock: String,
    },
    /// `arrive <port> <clock> <rise|fall>[@occ] <offset>`.
    Arrive {
        /// The input port.
        port: String,
        /// The reference edge.
        edge: EdgeRef,
        /// Offset after the edge.
        offset: Time,
    },
    /// `require <port> <clock> <rise|fall>[@occ] <offset>`.
    Require {
        /// The output port.
        port: String,
        /// The reference edge.
        edge: EdgeRef,
        /// Offset after the edge.
        offset: Time,
    },
}

/// A parsed `.hum` file: the design plus its clock waveforms and
/// boundary-timing directives.
#[derive(Debug)]
pub struct HumFile {
    /// The design, with the library interfaces declared.
    pub design: Design,
    /// The clock set (empty if the file declares no clocks).
    pub clocks: ClockSet,
    /// Boundary timing directives, in file order.
    pub timing: Vec<TimingDirective>,
}

/// Parses a `.hum` document against a cell library.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line for any syntax
/// error, unknown cell/module/pin, duplicate name, or malformed clock.
pub fn parse_hum(text: &str, library: &Library) -> Result<HumFile, ParseError> {
    let mut design = Design::new("unnamed");
    library
        .declare_into(&mut design)
        .map_err(|e| ParseError::new(0, e.to_string()))?;
    let mut clocks = ClockSet::new();
    let mut current: Option<ModuleId> = None;
    let mut timing: Vec<TimingDirective> = Vec::new();
    let mut named = false;

    // Pre-scan instance counts per module so the arenas are reserved
    // once instead of grown through log2(n) copies — at a million
    // cells the copies dominate parse time. Each `inst` line also
    // introduces roughly one fresh net (its output).
    let mut inst_counts: Vec<usize> = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("");
        match line.split_whitespace().next() {
            Some("module") => inst_counts.push(0),
            Some("inst") => {
                if let Some(count) = inst_counts.last_mut() {
                    *count += 1;
                }
            }
            _ => {}
        }
    }
    let mut module_index = 0usize;

    for (index, raw) in text.lines().enumerate() {
        let lineno = index + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let mut tokens = line.split_whitespace();
        let Some(keyword) = tokens.next() else {
            continue;
        };
        let err = |msg: String| ParseError::new(lineno, msg);
        match keyword {
            "design" => {
                let name = tokens
                    .next()
                    .ok_or_else(|| err("design needs a name".into()))?;
                if !named {
                    // `Design` has no rename; rebuild with the right name.
                    let mut renamed = Design::new(name);
                    library
                        .declare_into(&mut renamed)
                        .map_err(|e| err(e.to_string()))?;
                    design = renamed;
                    named = true;
                }
            }
            "module" => {
                if current.is_some() {
                    return Err(err("nested module (missing `end`?)".into()));
                }
                let name = tokens
                    .next()
                    .ok_or_else(|| err("module needs a name".into()))?;
                let id = design.add_module(name).map_err(|e| err(e.to_string()))?;
                let insts = inst_counts.get(module_index).copied().unwrap_or(0);
                design.reserve(id, insts, insts + 16);
                module_index += 1;
                current = Some(id);
            }
            "end" => {
                if current.take().is_none() {
                    return Err(err("`end` outside a module".into()));
                }
            }
            "port" => {
                let module = current.ok_or_else(|| err("`port` outside a module".into()))?;
                let dir = match tokens.next() {
                    Some("in") => PinDir::Input,
                    Some("out") => PinDir::Output,
                    other => {
                        return Err(err(format!(
                            "port direction must be `in` or `out`, got {other:?}"
                        )))
                    }
                };
                for token in tokens {
                    // `name` binds a same-named net; `name=net` binds an
                    // explicitly named one.
                    let (name, net_name) = match token.split_once('=') {
                        Some((p, n)) => (p, n),
                        None => (token, token),
                    };
                    let net = net_by_name_or_new(&mut design, module, net_name).map_err(&err)?;
                    design
                        .add_port(module, name, dir, net)
                        .map_err(|e| err(e.to_string()))?;
                }
            }
            "inst" => {
                let module = current.ok_or_else(|| err("`inst` outside a module".into()))?;
                let inst_name = tokens
                    .next()
                    .ok_or_else(|| err("inst needs a name".into()))?;
                let target = tokens
                    .next()
                    .ok_or_else(|| err("inst needs a cell or module name".into()))?;
                let inst = if let Some(leaf) = design.leaf_by_name(target) {
                    design
                        .add_leaf_instance(module, inst_name, leaf)
                        .map_err(|e| err(e.to_string()))?
                } else if let Some(child) = design.module_by_name(target) {
                    design
                        .add_module_instance(module, inst_name, child)
                        .map_err(|e| err(e.to_string()))?
                } else {
                    return Err(err(format!("unknown cell or module {target:?}")));
                };
                for conn in tokens {
                    let (pin, net_name) = conn
                        .split_once('=')
                        .ok_or_else(|| err(format!("expected pin=net, got {conn:?}")))?;
                    let net = net_by_name_or_new(&mut design, module, net_name).map_err(&err)?;
                    design
                        .connect(module, inst, pin, net)
                        .map_err(|e| err(e.to_string()))?;
                }
            }
            "top" => {
                let name = tokens
                    .next()
                    .ok_or_else(|| err("top needs a module name".into()))?;
                let id = design
                    .module_by_name(name)
                    .ok_or_else(|| err(format!("unknown module {name:?}")))?;
                design.set_top(id).map_err(|e| err(e.to_string()))?;
            }
            "clock" => {
                let name = tokens
                    .next()
                    .ok_or_else(|| err("clock needs a name".into()))?;
                let mut period = None;
                let mut rise = None;
                let mut fall = None;
                while let Some(key) = tokens.next() {
                    let value = tokens
                        .next()
                        .ok_or_else(|| err(format!("clock {key} needs a value")))?;
                    let t: Time = value
                        .parse()
                        .map_err(|e| err(format!("bad time {value:?}: {e}")))?;
                    match key {
                        "period" => period = Some(t),
                        "rise" => rise = Some(t),
                        "fall" => fall = Some(t),
                        other => return Err(err(format!("unknown clock field {other:?}"))),
                    }
                }
                let (Some(period), Some(rise), Some(fall)) = (period, rise, fall) else {
                    return Err(err("clock needs period, rise and fall".into()));
                };
                clocks
                    .add_clock(name, period, rise, fall)
                    .map_err(|e| err(e.to_string()))?;
            }
            "clockport" => {
                let port = tokens
                    .next()
                    .ok_or_else(|| err("clockport needs a port".into()))?;
                let clock = tokens
                    .next()
                    .ok_or_else(|| err("clockport needs a clock".into()))?;
                timing.push(TimingDirective::ClockPort {
                    port: port.to_owned(),
                    clock: clock.to_owned(),
                });
            }
            "arrive" | "require" => {
                let port = tokens
                    .next()
                    .ok_or_else(|| err(format!("{keyword} needs a port")))?;
                let clock = tokens
                    .next()
                    .ok_or_else(|| err(format!("{keyword} needs a clock")))?;
                let edge_tok = tokens
                    .next()
                    .ok_or_else(|| err(format!("{keyword} needs rise or fall")))?;
                let (dir, occ) = match edge_tok.split_once('@') {
                    Some((d, o)) => (
                        d,
                        o.parse::<u32>()
                            .map_err(|e| err(format!("bad occurrence {o:?}: {e}")))?,
                    ),
                    None => (edge_tok, 0),
                };
                let transition = match dir {
                    "rise" => Transition::Rise,
                    "fall" => Transition::Fall,
                    other => return Err(err(format!("expected rise or fall, got {other:?}"))),
                };
                let offset_tok = tokens
                    .next()
                    .ok_or_else(|| err(format!("{keyword} needs an offset")))?;
                let offset: Time = offset_tok
                    .parse()
                    .map_err(|e| err(format!("bad time {offset_tok:?}: {e}")))?;
                let edge = (clock.to_owned(), transition, occ);
                timing.push(if keyword == "arrive" {
                    TimingDirective::Arrive {
                        port: port.to_owned(),
                        edge,
                        offset,
                    }
                } else {
                    TimingDirective::Require {
                        port: port.to_owned(),
                        edge,
                        offset,
                    }
                });
            }
            other => return Err(err(format!("unknown keyword {other:?}"))),
        }
    }
    if current.is_some() {
        return Err(ParseError::new(0, "unterminated module (missing `end`)"));
    }
    Ok(HumFile {
        design,
        clocks,
        timing,
    })
}

fn net_by_name_or_new(design: &mut Design, module: ModuleId, name: &str) -> Result<NetId, String> {
    if let Some(net) = design.module(module).net_by_name(name) {
        return Ok(net);
    }
    design.add_net(module, name).map_err(|e| e.to_string())
}

/// A (port name, net name) pair used while emitting port lines.
struct PortView<'a> {
    name: &'a str,
    net: &'a str,
}

/// Serializes a design (and clocks) to `.hum` text. Child modules are
/// emitted before their parents so the output always re-parses, and a
/// port bound to a differently named net is written as `name=net`.
pub fn write_hum(design: &Design, clocks: &ClockSet) -> String {
    write_hum_with_timing(design, clocks, &[])
}

/// [`write_hum`] plus boundary-timing directives.
pub fn write_hum_with_timing(
    design: &Design,
    clocks: &ClockSet,
    timing: &[TimingDirective],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "design {}", design.name());
    let _ = writeln!(out);

    // Emit in dependency order.
    let mut emitted = vec![false; design.modules().count()];
    let mut order = Vec::new();
    fn visit(design: &Design, m: ModuleId, emitted: &mut [bool], order: &mut Vec<ModuleId>) {
        if emitted[m.as_raw() as usize] {
            return;
        }
        emitted[m.as_raw() as usize] = true;
        for (_, inst) in design.module(m).instances() {
            if let InstRef::Module(child) = inst.target() {
                visit(design, child, emitted, order);
            }
        }
        order.push(m);
    }
    for (id, _) in design.modules() {
        visit(design, id, &mut emitted, &mut order);
    }

    for id in order {
        let module = design.module(id);
        let _ = writeln!(out, "module {}", module.name());
        let port_token = |p: &crate::hum::PortView<'_>| -> String {
            if p.name == p.net {
                p.name.to_owned()
            } else {
                format!("{}={}", p.name, p.net)
            }
        };
        let ins: Vec<String> = module
            .ports()
            .filter(|(_, p)| p.dir() == PinDir::Input)
            .map(|(_, p)| {
                port_token(&PortView {
                    name: p.name(),
                    net: module.net(p.net()).name(),
                })
            })
            .collect();
        if !ins.is_empty() {
            let _ = writeln!(out, "  port in {}", ins.join(" "));
        }
        let outs: Vec<String> = module
            .ports()
            .filter(|(_, p)| p.dir() == PinDir::Output)
            .map(|(_, p)| {
                port_token(&PortView {
                    name: p.name(),
                    net: module.net(p.net()).name(),
                })
            })
            .collect();
        if !outs.is_empty() {
            let _ = writeln!(out, "  port out {}", outs.join(" "));
        }
        for (inst_id, inst) in module.instances() {
            let target = match inst.target() {
                InstRef::Leaf(l) => design.leaf(l).name().to_owned(),
                InstRef::Module(m) => design.module(m).name().to_owned(),
            };
            let mut line = format!("  inst {} {}", inst.name(), target);
            for (slot, net) in inst.conns() {
                let _ = write!(
                    line,
                    " {}={}",
                    design.pin_name(id, inst_id, slot),
                    module.net(net).name()
                );
            }
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, "end");
        let _ = writeln!(out);
    }

    if let Some(top) = design.top() {
        let _ = writeln!(out, "top {}", design.module(top).name());
    }
    for (_, clock) in clocks.clocks() {
        let _ = writeln!(
            out,
            "clock {} period {} rise {} fall {}",
            clock.name(),
            clock.period(),
            clock.rise(),
            clock.fall()
        );
    }
    for directive in timing {
        match directive {
            TimingDirective::ClockPort { port, clock } => {
                let _ = writeln!(out, "clockport {port} {clock}");
            }
            TimingDirective::Arrive { port, edge, offset }
            | TimingDirective::Require { port, edge, offset } => {
                let keyword = if matches!(directive, TimingDirective::Arrive { .. }) {
                    "arrive"
                } else {
                    "require"
                };
                let dir = match edge.1 {
                    Transition::Rise => "rise",
                    Transition::Fall => "fall",
                };
                let occ = if edge.2 == 0 {
                    String::new()
                } else {
                    format!("@{}", edge.2)
                };
                let _ = writeln!(out, "{keyword} {port} {} {dir}{occ} {offset}", edge.0);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_cells::sc89;

    const SAMPLE: &str = "\
# a small two-gate design
design demo

module top
  port in a ck
  port out y
  inst u1 INV_X1 A=a Y=w
  inst u2 INV_X2 A=w Y=v
  inst ff DFF D=v CK=ck Q=y
end

top top
clock ck period 20ns rise 0ns fall 10ns
";

    #[test]
    fn parse_sample() {
        let lib = sc89();
        let file = parse_hum(SAMPLE, &lib).unwrap();
        assert_eq!(file.design.name(), "demo");
        let top = file.design.top().unwrap();
        let m = file.design.module(top);
        assert_eq!(m.instance_count(), 3);
        assert_eq!(m.net_count(), 5);
        assert!(m.net_by_name("w").is_some(), "implicit net created");
        file.design.validate().unwrap();
        assert_eq!(file.clocks.len(), 1);
        let ck = file.clocks.clock_by_name("ck").unwrap();
        assert_eq!(file.clocks.clock(ck).period(), Time::from_ns(20));
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let lib = sc89();
        let file = parse_hum(SAMPLE, &lib).unwrap();
        let text = write_hum(&file.design, &file.clocks);
        let again = parse_hum(&text, &lib).unwrap();
        let a = file.design.stats(file.design.top().unwrap());
        let b = again.design.stats(again.design.top().unwrap());
        assert_eq!(a, b);
        assert_eq!(again.clocks.len(), 1);
        again.design.validate().unwrap();
    }

    #[test]
    fn hierarchy_roundtrip() {
        let lib = sc89();
        let text = "\
design h
module pair
  port in a
  port out y
  inst g1 INV_X1 A=a Y=m
  inst g2 INV_X1 A=m Y=y
end
module top
  port in a
  port out y
  inst p0 pair a=a y=w
  inst p1 pair a=w y=y
end
top top
";
        let file = parse_hum(text, &lib).unwrap();
        file.design.validate().unwrap();
        assert_eq!(file.design.stats(file.design.top().unwrap()).cells, 4);
        let emitted = write_hum(&file.design, &file.clocks);
        let again = parse_hum(&emitted, &lib).unwrap();
        assert_eq!(again.design.stats(again.design.top().unwrap()).cells, 4);
    }

    #[test]
    fn error_reporting() {
        let lib = sc89();
        let bad = "module top\n  inst u1 NO_SUCH_CELL A=a\nend\n";
        let err = parse_hum(bad, &lib).unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.message().contains("NO_SUCH_CELL"));

        let bad = "inst u1 INV_X1 A=a\n";
        assert!(parse_hum(bad, &lib)
            .unwrap_err()
            .message()
            .contains("outside"));

        let bad = "module top\n";
        assert_eq!(parse_hum(bad, &lib).unwrap_err().line(), 0);

        let bad = "module top\nend\nclock c period 10ns rise 0ns\n";
        assert!(parse_hum(bad, &lib)
            .unwrap_err()
            .message()
            .contains("period, rise and fall"));

        let bad = "module top\n  port sideways a\nend\n";
        assert!(parse_hum(bad, &lib)
            .unwrap_err()
            .message()
            .contains("direction"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let lib = sc89();
        let text = "\n\n# nothing\nmodule top # trailing\nend\ntop top\n";
        let file = parse_hum(text, &lib).unwrap();
        assert!(file.design.top().is_some());
    }
}
