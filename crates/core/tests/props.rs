//! Property-style tests of the analyzer's core invariants, on designs
//! with exact (load-independent) delays, driven by a seeded
//! deterministic generator.

mod common;

use common::{exact_lib, Builder};
use hb_clock::ClockSet;
use hb_rng::SmallRng;
use hb_units::{Time, Transition};
use hummingbird::{AnalysisOptions, Analyzer, EdgeSpec, LatchModel, Spec};

const CASES: u64 = 48;

/// `in -> DEL… -> FF(ck)` with the given chain and a given period; the
/// capture budget is exactly one period.
fn chain_design(delays: &[i64], period_ns: i64) -> (Builder, ClockSet, Spec) {
    let lib = exact_lib(delays);
    let mut b = Builder::new(&lib);
    let input = b.input("in");
    let ck = b.input("ck");
    let q = b.output("q");
    let d = b.net("d");
    b.delay_chain(input, d, delays);
    b.inst("FF", &[("D", d), ("C", ck), ("Q", q)]);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock(
            "ck",
            Time::from_ns(period_ns),
            Time::ZERO,
            Time::from_ns(period_ns / 2),
        )
        .unwrap();
    let spec = Spec::new().clock_port("ck", "ck").input_arrival(
        "in",
        EdgeSpec::new("ck", Transition::Rise),
        Time::ZERO,
    );
    (b, clocks, spec)
}

/// Two-phase single-latch borrowing fixture with arbitrary stage delays.
fn latch_design(
    d_a: i64,
    d_b: i64,
    lead2: i64,
    width2: i64,
    period: i64,
) -> (Builder, ClockSet, Spec) {
    let lib = exact_lib(&[d_a, d_b]);
    let mut b = Builder::new(&lib);
    let input = b.input("in");
    let phi1 = b.input("phi1");
    let phi2 = b.input("phi2");
    let q = b.output("q");
    let mid = b.net("mid");
    let lat_q = b.net("lat_q");
    let ff_d = b.net("ff_d");
    b.delay_chain(input, mid, &[d_a]);
    b.inst("LAT", &[("D", mid), ("C", phi2), ("Q", lat_q)]);
    b.delay_chain(lat_q, ff_d, &[d_b]);
    b.inst("FF", &[("D", ff_d), ("C", phi1), ("Q", q)]);
    let mut clocks = ClockSet::new();
    clocks
        .add_clock(
            "phi1",
            Time::from_ns(period),
            Time::ZERO,
            Time::from_ns(period * 2 / 5),
        )
        .unwrap();
    clocks
        .add_clock(
            "phi2",
            Time::from_ns(period),
            Time::from_ns(lead2),
            Time::from_ns(lead2 + width2),
        )
        .unwrap();
    let spec = Spec::new()
        .clock_port("phi1", "phi1")
        .clock_port("phi2", "phi2")
        .input_arrival("in", EdgeSpec::new("phi1", Transition::Rise), Time::ZERO);
    (b, clocks, spec)
}

/// The worst slack of a pure chain is exactly `period − Σ delays` — the
/// analyzer's arithmetic is closed-form on simple designs.
#[test]
fn chain_slack_is_closed_form() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5001 + case);
        let n = rng.gen_range(1..6);
        let delays: Vec<i64> = (0..n).map(|_| rng.gen_range(1..20) as i64).collect();
        let period_ns = rng.gen_range(10..200) as i64;
        let (b, clocks, spec) = chain_design(&delays, period_ns);
        let lib = exact_lib(&delays);
        let report = Analyzer::new(&b.design, b.module, &lib, &clocks, spec)
            .unwrap()
            .analyze();
        let expected = Time::from_ns(period_ns - delays.iter().sum::<i64>());
        assert_eq!(report.worst_slack(), expected);
        assert_eq!(report.ok(), expected > Time::ZERO);
    }
}

/// Analysis is deterministic.
#[test]
fn analysis_is_deterministic() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5002 + case);
        let d_a = rng.gen_range(1..60) as i64;
        let d_b = rng.gen_range(1..60) as i64;
        let lead2 = rng.gen_range(45..55) as i64;
        let width2 = rng.gen_range(10..40) as i64;
        let (b, clocks, spec) = latch_design(d_a, d_b, lead2, width2, 100);
        let lib = exact_lib(&[d_a, d_b]);
        let r1 = Analyzer::new(&b.design, b.module, &lib, &clocks, spec.clone())
            .unwrap()
            .analyze();
        let r2 = Analyzer::new(&b.design, b.module, &lib, &clocks, spec)
            .unwrap()
            .analyze();
        assert_eq!(r1.worst_slack(), r2.worst_slack());
        assert_eq!(r1.ok(), r2.ok());
    }
}

/// Whenever the edge-triggered baseline accepts a latch design, the
/// transparent analysis does too (the proposition's feasible-set
/// containment).
#[test]
fn transparent_subsumes_edge_triggered() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5003 + case);
        let d_a = rng.gen_range(1..90) as i64;
        let d_b = rng.gen_range(1..90) as i64;
        let lead2 = rng.gen_range(42..58) as i64;
        let width2 = rng.gen_range(8..40) as i64;
        let (b, clocks, spec) = latch_design(d_a, d_b, lead2, width2, 100);
        let lib = exact_lib(&[d_a, d_b]);
        let transparent = Analyzer::new(&b.design, b.module, &lib, &clocks, spec.clone())
            .unwrap()
            .analyze()
            .ok();
        let edge = Analyzer::with_options(
            &b.design,
            b.module,
            &lib,
            &clocks,
            spec,
            AnalysisOptions {
                latch_model: LatchModel::EdgeTriggered,
                ..AnalysisOptions::default()
            },
        )
        .unwrap()
        .analyze()
        .ok();
        assert!(
            !edge || transparent,
            "edge ok but transparent not (dA={d_a} dB={d_b})"
        );
    }
}

/// The transparent verdict matches the closed-form feasibility of the
/// single-latch system: there must exist an assertion time
/// `t ∈ [lead2, lead2+width2]` with `d_a ≤ t` and `t + d_b ≤ period`,
/// with strict inequalities for a strictly positive verdict.
#[test]
fn borrowing_matches_closed_form_feasibility() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5004 + case);
        let d_a = rng.gen_range(1..99) as i64;
        let d_b = rng.gen_range(1..99) as i64;
        let lead2 = rng.gen_range(40..60) as i64;
        let width2 = rng.gen_range(10..39) as i64;
        let (b, clocks, spec) = latch_design(d_a, d_b, lead2, width2, 100);
        let lib = exact_lib(&[d_a, d_b]);
        let report = Analyzer::new(&b.design, b.module, &lib, &clocks, spec)
            .unwrap()
            .analyze();
        // Feasible window for the latch assertion time t:
        //   t >= lead2 (window start), t >= d_a (data arrival),
        //   t <= lead2 + width2 (window end), t + d_b <= 100 (capture).
        let lo = lead2.max(d_a);
        let hi = (lead2 + width2).min(100 - d_b);
        // Strictly feasible (slack > 0 achievable) iff lo < hi.
        assert_eq!(
            report.ok(),
            lo < hi,
            "dA={} dB={} window=[{}..{}] verdict={}",
            d_a,
            d_b,
            lo,
            hi,
            report.ok()
        );
    }
}

/// Scaling every waveform and the period together can only help a fixed
/// netlist: verdicts are monotone in the scale factor.
#[test]
fn proportional_period_scaling_is_monotone() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5005 + case);
        let n = rng.gen_range(1..5);
        let delays: Vec<i64> = (0..n).map(|_| rng.gen_range(1..15) as i64).collect();
        let base = rng.gen_range(8..40) as i64;
        let lib = exact_lib(&delays);
        let mut last_ok = false;
        for scale in [1i64, 2, 4] {
            let (b, clocks, spec) = chain_design(&delays, base * scale);
            let report = Analyzer::new(&b.design, b.module, &lib, &clocks, spec)
                .unwrap()
                .analyze();
            assert!(
                !last_ok || report.ok(),
                "ok at {}x but not {}x",
                scale / 2,
                scale
            );
            last_ok = report.ok();
        }
    }
}
