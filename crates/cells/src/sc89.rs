//! The built-in `sc89` standard-cell library.
//!
//! A compact, late-1980s-flavoured static CMOS library in the spirit of
//! the Berkeley standard cells the paper's experiments used: simple gates
//! with X1/X2/X4 drive variants, an edge-triggered flip-flop, transparent
//! latches of both phases, a clocked tristate driver, and dedicated clock
//! buffers for control paths.
//!
//! Delay numbers are representative of a ~1.5 µm process (hundreds of
//! picoseconds of intrinsic delay, a handful of ps/fF of load slope);
//! their absolute values are not calibrated to any real process — the
//! reproduction targets run-time shape and analysis semantics, not
//! silicon.

use hb_netlist::{LeafDef, PinDir};
use hb_units::{RiseFall, Sense, Time};

use crate::cell::{Cell, DriveStrength, Function, SyncKind, SyncSpec, TimingArc};
use crate::delay::DelayModel;
use crate::library::Library;

struct CombSpec {
    family: &'static str,
    inputs: &'static [&'static str],
    sense: Sense,
    /// Intrinsic rise/fall delay at X1, in picoseconds.
    intrinsic: (i64, i64),
    /// Load slope at X1, ps/fF.
    slope: (i64, i64),
    /// Input pin capacitance at X1, fF.
    cap: i64,
    /// Area at X1.
    area: u32,
    /// Drive variants to generate.
    drives: &'static [u8],
}

const COMB_CELLS: &[CombSpec] = &[
    CombSpec {
        family: "INV",
        inputs: &["A"],
        sense: Sense::Negative,
        intrinsic: (60, 45),
        slope: (6, 5),
        cap: 4,
        area: 2,
        drives: &[1, 2, 4],
    },
    CombSpec {
        family: "BUF",
        inputs: &["A"],
        sense: Sense::Positive,
        intrinsic: (110, 95),
        slope: (5, 4),
        cap: 4,
        area: 3,
        drives: &[1, 2, 4],
    },
    CombSpec {
        family: "NAND2",
        inputs: &["A", "B"],
        sense: Sense::Negative,
        intrinsic: (90, 65),
        slope: (8, 6),
        cap: 5,
        area: 3,
        drives: &[1, 2, 4],
    },
    CombSpec {
        family: "NAND3",
        inputs: &["A", "B", "C"],
        sense: Sense::Negative,
        intrinsic: (120, 85),
        slope: (10, 7),
        cap: 6,
        area: 4,
        drives: &[1, 2],
    },
    CombSpec {
        family: "NAND4",
        inputs: &["A", "B", "C", "D"],
        sense: Sense::Negative,
        intrinsic: (150, 105),
        slope: (12, 8),
        cap: 7,
        area: 5,
        drives: &[1],
    },
    CombSpec {
        family: "NOR2",
        inputs: &["A", "B"],
        sense: Sense::Negative,
        intrinsic: (110, 60),
        slope: (11, 6),
        cap: 5,
        area: 3,
        drives: &[1, 2, 4],
    },
    CombSpec {
        family: "NOR3",
        inputs: &["A", "B", "C"],
        sense: Sense::Negative,
        intrinsic: (150, 75),
        slope: (14, 7),
        cap: 6,
        area: 4,
        drives: &[1, 2],
    },
    CombSpec {
        family: "AND2",
        inputs: &["A", "B"],
        sense: Sense::Positive,
        intrinsic: (160, 135),
        slope: (6, 5),
        cap: 5,
        area: 4,
        drives: &[1, 2],
    },
    CombSpec {
        family: "OR2",
        inputs: &["A", "B"],
        sense: Sense::Positive,
        intrinsic: (175, 140),
        slope: (6, 5),
        cap: 5,
        area: 4,
        drives: &[1, 2],
    },
    CombSpec {
        family: "XOR2",
        inputs: &["A", "B"],
        sense: Sense::NonUnate,
        intrinsic: (220, 200),
        slope: (9, 8),
        cap: 7,
        area: 6,
        drives: &[1, 2],
    },
    CombSpec {
        family: "XNOR2",
        inputs: &["A", "B"],
        sense: Sense::NonUnate,
        intrinsic: (225, 205),
        slope: (9, 8),
        cap: 7,
        area: 6,
        drives: &[1],
    },
    CombSpec {
        family: "AOI21",
        inputs: &["A", "B", "C"],
        sense: Sense::Negative,
        intrinsic: (130, 90),
        slope: (10, 7),
        cap: 6,
        area: 4,
        drives: &[1, 2],
    },
    CombSpec {
        family: "OAI21",
        inputs: &["A", "B", "C"],
        sense: Sense::Negative,
        intrinsic: (135, 95),
        slope: (10, 7),
        cap: 6,
        area: 4,
        drives: &[1, 2],
    },
    CombSpec {
        family: "MUX2",
        inputs: &["A", "B", "S"],
        sense: Sense::NonUnate,
        intrinsic: (240, 215),
        slope: (8, 7),
        cap: 6,
        area: 7,
        drives: &[1, 2],
    },
    // Clock-tree cells: monotonic (the paper requires control signals to
    // be monotonic functions of exactly one clock).
    CombSpec {
        family: "CLKBUF",
        inputs: &["A"],
        sense: Sense::Positive,
        intrinsic: (120, 110),
        slope: (4, 4),
        cap: 5,
        area: 4,
        drives: &[1, 2, 4],
    },
    CombSpec {
        family: "CLKINV",
        inputs: &["A"],
        sense: Sense::Negative,
        intrinsic: (70, 60),
        slope: (4, 4),
        cap: 5,
        area: 3,
        drives: &[1, 2],
    },
];

fn add_comb_family(lib: &mut Library, spec: &CombSpec) {
    for &drive in spec.drives {
        let name = format!("{}_X{}", spec.family, drive);
        let mut iface = LeafDef::new(name);
        for input in spec.inputs {
            iface = iface.pin(*input, PinDir::Input);
        }
        iface = iface.pin("Y", PinDir::Output);
        let out = iface.pin_by_name("Y").expect("just added");
        let base = DelayModel::new(
            RiseFall::new(
                Time::from_ps(spec.intrinsic.0),
                Time::from_ps(spec.intrinsic.1),
            ),
            RiseFall::new(spec.slope.0, spec.slope.1),
        )
        .scaled_drive(i64::from(drive));
        let arcs = spec
            .inputs
            .iter()
            .map(|input| TimingArc {
                from: iface.pin_by_name(input).expect("declared above"),
                to: out,
                sense: spec.sense,
                delay: base,
            })
            .collect();
        let mut caps = vec![spec.cap * i64::from(drive); spec.inputs.len()];
        caps.push(0); // output pin
        lib.add_cell(Cell::new(
            iface,
            Function::Combinational(arcs),
            caps,
            DriveStrength(drive),
            spec.family,
            spec.area * u32::from(drive),
        ));
    }
}

#[allow(clippy::too_many_arguments)]
fn add_sync(
    lib: &mut Library,
    name: &str,
    family: &str,
    kind: SyncKind,
    control_pin: &str,
    control_sense: Sense,
    setup_ps: i64,
    d_cx_ps: i64,
    d_dx_ps: i64,
) {
    let iface = LeafDef::new(name)
        .pin("D", PinDir::Input)
        .pin(control_pin, PinDir::Input)
        .pin("Q", PinDir::Output);
    let spec = SyncSpec {
        kind,
        data: iface.pin_by_name("D").expect("declared"),
        control: iface.pin_by_name(control_pin).expect("declared"),
        output: iface.pin_by_name("Q").expect("declared"),
        output_bar: None,
        setup: Time::from_ps(setup_ps),
        hold: Time::from_ps(100),
        d_cx: Time::from_ps(d_cx_ps),
        d_dx: Time::from_ps(d_dx_ps),
        control_sense,
        output_delay: DelayModel::new(RiseFall::splat(Time::ZERO), RiseFall::splat(7)),
    };
    lib.add_cell(Cell::new(
        iface,
        Function::Sync(spec),
        vec![5, 3, 0],
        DriveStrength::X1,
        family,
        10,
    ));
}

/// Builds the built-in `sc89` library.
///
/// Synchronising elements:
///
/// | Cell | Element | Enabled while clock is… | Captures on… |
/// |------|---------|------------------------|--------------|
/// | `DFF` | trailing-edge latch | low | rising edge |
/// | `DFFN` | trailing-edge latch | high | falling edge |
/// | `DLATCH` | transparent latch | high | falling edge |
/// | `DLATCHN` | transparent latch | low | rising edge |
/// | `TBUF` | clocked tristate | high | falling edge |
///
/// (A conventional rising-edge flip-flop is a *trailing-edge* element
/// whose control pulse is the clock-low window, hence `DFF` carries
/// [`Sense::Negative`] control sense.)
///
/// # Examples
///
/// ```
/// let lib = hb_cells::sc89();
/// assert!(lib.cell_by_name("NAND2_X1").is_some());
/// assert!(lib.cell_by_name("DLATCH").is_some());
/// ```
pub fn sc89() -> Library {
    let mut lib = Library::new("sc89");
    for spec in COMB_CELLS {
        add_comb_family(&mut lib, spec);
    }
    add_sync(
        &mut lib,
        "DFF",
        "DFF",
        SyncKind::TrailingEdge,
        "CK",
        Sense::Negative,
        300,
        450,
        0,
    );
    add_sync(
        &mut lib,
        "DFFN",
        "DFFN",
        SyncKind::TrailingEdge,
        "CK",
        Sense::Positive,
        300,
        450,
        0,
    );
    add_sync(
        &mut lib,
        "DLATCH",
        "DLATCH",
        SyncKind::Transparent,
        "G",
        Sense::Positive,
        250,
        400,
        350,
    );
    add_sync(
        &mut lib,
        "DLATCHN",
        "DLATCHN",
        SyncKind::Transparent,
        "G",
        Sense::Negative,
        250,
        400,
        350,
    );
    add_sync(
        &mut lib,
        "TBUF",
        "TBUF",
        SyncKind::ClockedTristate,
        "EN",
        Sense::Positive,
        200,
        350,
        300,
    );
    add_dffqn(&mut lib);
    lib
}

/// `DFFQN`: a rising-edge flip-flop with both true and complementary
/// outputs — the paper's "output-bar" terminal.
fn add_dffqn(lib: &mut Library) {
    let iface = LeafDef::new("DFFQN")
        .pin("D", PinDir::Input)
        .pin("CK", PinDir::Input)
        .pin("Q", PinDir::Output)
        .pin("QN", PinDir::Output);
    let spec = SyncSpec {
        kind: SyncKind::TrailingEdge,
        data: iface.pin_by_name("D").expect("declared"),
        control: iface.pin_by_name("CK").expect("declared"),
        output: iface.pin_by_name("Q").expect("declared"),
        output_bar: iface.pin_by_name("QN"),
        setup: Time::from_ps(300),
        hold: Time::from_ps(100),
        d_cx: Time::from_ps(450),
        d_dx: Time::ZERO,
        control_sense: Sense::Negative,
        output_delay: DelayModel::new(RiseFall::splat(Time::ZERO), RiseFall::splat(7)),
    };
    lib.add_cell(Cell::new(
        iface,
        Function::Sync(spec),
        vec![5, 3, 0, 0],
        DriveStrength::X1,
        "DFFQN",
        12,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_netlist::Design;
    use hb_units::Transition;

    #[test]
    fn declares_into_a_design() {
        let lib = sc89();
        let mut d = Design::new("x");
        lib.declare_into(&mut d).unwrap();
        assert!(d.leaf_by_name("INV_X1").is_some());
        assert!(d.leaf_by_name("DFF").is_some());
        assert_eq!(d.leaves().count(), lib.cells().count());
    }

    #[test]
    fn every_comb_cell_has_an_arc_per_input() {
        let lib = sc89();
        for (_, cell) in lib.cells() {
            if cell.sync_spec().is_some() {
                continue;
            }
            let inputs = cell.interface().input_slots().count();
            assert_eq!(
                cell.arcs().len(),
                inputs,
                "cell {} must cover all inputs",
                cell.name()
            );
        }
    }

    #[test]
    fn drive_variants_are_faster_under_load() {
        let lib = sc89();
        let x1 = lib.cell(lib.cell_by_name("INV_X1").unwrap());
        let x4 = lib.cell(lib.cell_by_name("INV_X4").unwrap());
        let d1 = x1.arcs()[0].delay.eval(40).max[Transition::Rise];
        let d4 = x4.arcs()[0].delay.eval(40).max[Transition::Rise];
        assert!(d4 < d1, "X4 must beat X1 at 40 fF: {d4} vs {d1}");
        // …but presents more input capacitance.
        let a = x1.interface().pin_by_name("A").unwrap();
        assert!(x4.pin_cap_ff(a) > x1.pin_cap_ff(a));
    }

    #[test]
    fn sync_cells_are_complete() {
        let lib = sc89();
        for name in ["DFF", "DFFN", "DLATCH", "DLATCHN", "TBUF"] {
            let cell = lib.cell(lib.cell_by_name(name).unwrap());
            let spec = cell.sync_spec().unwrap_or_else(|| panic!("{name} is sync"));
            assert!(spec.setup > Time::ZERO);
            assert!(spec.d_cx > Time::ZERO);
            if spec.kind.is_transparent() {
                assert!(
                    spec.d_dx > Time::ZERO,
                    "{name} needs a data-to-output delay"
                );
            }
        }
        let dff = lib.cell(lib.cell_by_name("DFF").unwrap());
        assert_eq!(dff.sync_spec().unwrap().control_sense, Sense::Negative);
        let dlatch = lib.cell(lib.cell_by_name("DLATCH").unwrap());
        assert_eq!(dlatch.sync_spec().unwrap().control_sense, Sense::Positive);
    }

    #[test]
    fn families_have_sorted_variants() {
        let lib = sc89();
        let invs = lib.family_variants("INV");
        assert_eq!(invs.len(), 3);
        assert_eq!(lib.cell(invs[0]).name(), "INV_X1");
        assert_eq!(lib.cell(invs[2]).name(), "INV_X4");
    }
}
