//! The database error type.

use std::fmt;

/// Errors returned by [`crate::Design`] construction, editing and
/// validation methods.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetlistError {
    /// A name collided within its namespace.
    DuplicateName {
        /// The namespace ("leaf", "module", "instance", "net", "port").
        kind: &'static str,
        /// The offending name.
        name: String,
    },
    /// A lookup by name failed.
    UnknownName {
        /// The namespace searched.
        kind: &'static str,
        /// The name that was not found.
        name: String,
    },
    /// A pin name does not exist on the referenced interface.
    UnknownPin {
        /// The interface (cell or module) name.
        interface: String,
        /// The pin name that was not found.
        pin: String,
    },
    /// A net already has a driver and a second one was connected.
    MultipleDrivers {
        /// The module name.
        module: String,
        /// The net name.
        net: String,
    },
    /// A net has no driver.
    UndrivenNet {
        /// The module name.
        module: String,
        /// The net name.
        net: String,
    },
    /// An input pin was left unconnected.
    DanglingInput {
        /// The module name.
        module: String,
        /// The instance name.
        inst: String,
        /// The pin name.
        pin: String,
    },
    /// The design has no top module set.
    NoTop,
    /// The module hierarchy contains an instantiation cycle.
    RecursiveHierarchy {
        /// The module on the cycle.
        module: String,
    },
    /// An instance replacement changed the interface shape.
    InterfaceMismatch {
        /// The instance being edited.
        inst: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} name {name:?}")
            }
            NetlistError::UnknownName { kind, name } => {
                write!(f, "unknown {kind} {name:?}")
            }
            NetlistError::UnknownPin { interface, pin } => {
                write!(f, "interface {interface:?} has no pin {pin:?}")
            }
            NetlistError::MultipleDrivers { module, net } => {
                write!(f, "net {net:?} in module {module:?} has multiple drivers")
            }
            NetlistError::UndrivenNet { module, net } => {
                write!(f, "net {net:?} in module {module:?} has no driver")
            }
            NetlistError::DanglingInput { module, inst, pin } => write!(
                f,
                "input pin {pin:?} of instance {inst:?} in module {module:?} is unconnected"
            ),
            NetlistError::NoTop => write!(f, "design has no top module"),
            NetlistError::RecursiveHierarchy { module } => {
                write!(
                    f,
                    "module {module:?} instantiates itself (possibly indirectly)"
                )
            }
            NetlistError::InterfaceMismatch { inst, detail } => {
                write!(f, "cannot retarget instance {inst:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = NetlistError::DuplicateName {
            kind: "net",
            name: "clk".into(),
        };
        assert_eq!(e.to_string(), "duplicate net name \"clk\"");
        let e = NetlistError::UnknownPin {
            interface: "NAND2".into(),
            pin: "Q".into(),
        };
        assert!(e.to_string().contains("NAND2"));
        assert!(e.to_string().contains("Q"));
        assert_eq!(NetlistError::NoTop.to_string(), "design has no top module");
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_error(NetlistError::NoTop);
    }
}
