//! `hb-obs` — lock-free observability for the hummingbird stack.
//!
//! Every subsystem of the resident analyzer (transport, session,
//! sweep engine, fault harness) tallies what it does into metric
//! handles from this crate: [`Counter`]s, [`Gauge`]s with peak
//! tracking, fixed-bucket power-of-two latency [`Histogram`]s with
//! p50/p95/max readout, and [`Span`] timers. A [`Registry`] names the
//! metrics and renders them as Prometheus-style text exposition (the
//! daemon's `metrics` verb); [`parse_exposition`] validates that text
//! for tests and CI smokes.
//!
//! # Design rules
//!
//! * **Lock-free on the hot path.** Registration takes a mutex once
//!   per series; the returned handle is an `Arc` over atomics, and
//!   every update is a relaxed atomic op. Hot call sites resolve
//!   handles at construction (or through `OnceLock`) and never touch
//!   the registry again.
//! * **Zero cost when disarmed.** Counters and gauges always tally
//!   (one relaxed `fetch_add`; unmeasurable next to any request).
//!   Anything that must read the clock — [`Histogram::span`] and
//!   explicit timing blocks gated on [`armed`] — compiles down to one
//!   relaxed load when the process-wide flag is off, which is the
//!   default. `perf_summary` measures the armed-vs-disarmed delta and
//!   records it in `BENCH_perf.json`.
//! * **Metrics never perturb results.** Instrumentation only observes;
//!   the metrics-parity test asserts analysis reports are bit-identical
//!   with the process armed and disarmed, at 1 and 8 threads.
//! * **Deterministic exposition.** [`Registry::render`] sorts by name
//!   and labels so snapshots diff cleanly.
//!
//! Two registries matter in practice: the process-wide [`global()`]
//! one (engine and fault-injection counters, too deep to thread a
//! handle into) and per-instance registries owned by whoever needs
//! isolated counts (each `hb-server` session owns one, so two daemons
//! in one test process do not bleed request counts into each other).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

mod metrics;
mod registry;
mod stream;

pub use metrics::{bucket_bound, Counter, Gauge, Histogram, Span, BUCKETS};
pub use registry::{parse_exposition, Registry};
pub use stream::{CountingReader, CountingWriter};

/// Whether timing instrumentation is armed, process-wide.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Arms timing instrumentation: spans and `armed()`-gated timing
/// blocks start reading the clock. The daemon arms on startup; the
/// one-shot CLI arms under `--profile`; benches toggle it to measure
/// overhead.
pub fn arm() {
    ARMED.store(true, Ordering::Release);
}

/// Disarms timing instrumentation (the default): spans become inert.
/// Counters and gauges keep tallying either way.
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
}

/// Whether timing instrumentation is armed. One relaxed-ish load —
/// cheap enough for any hot path.
pub fn armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// The process-wide registry, for instrumentation points too deep to
/// thread a registry handle into (the sweep engine, fault points).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}
