//! A text format for cell libraries ("liberty-lite").
//!
//! The built-in `sc89` library is authored in code; this format lets a
//! deployment bring its own characterized cells, in the spirit of the
//! paper's separation between component delay estimation and system
//! analysis. Times are picoseconds, capacitances femtofarads:
//!
//! ```text
//! library <name>
//! wireload <base_ff> <per_fanout_ff>
//!
//! cell <NAME> family <FAMILY> drive <N> area <N>
//!   pin <name> <in|out> [cap <ff>]
//!   arc <in> <out> <positive|negative|nonunate> \
//!       intrinsic <rise> <fall> slope <rise> <fall> [minscale <pct>]
//!   sync <trailing|transparent|tristate> data <pin> control <pin> \
//!       out <pin> [outbar <pin>] setup <ps> hold <ps> dcx <ps> ddx <ps> \
//!       sense <pos|neg> outslope <rise> <fall>
//! ```
//!
//! A cell is closed by the next `cell` line or end of input. A cell
//! with a `sync` line is a synchronising element; otherwise its `arc`
//! lines define combinational timing.

use std::fmt::Write as _;

use hb_cells::{
    Cell, DelayModel, DriveStrength, Function, Library, SyncKind, SyncSpec, TimingArc, WireLoad,
};
use hb_netlist::{LeafDef, PinDir};
use hb_units::{RiseFall, Sense, Time};

use crate::error::ParseError;

/// Parses a liberty-lite library document.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line for unknown
/// directives, undeclared pins, malformed numbers, or duplicate cells.
pub fn parse_lib(text: &str) -> Result<Library, ParseError> {
    struct PendingCell {
        name: String,
        family: String,
        drive: u8,
        area: u32,
        pins: Vec<(String, PinDir, i64)>,
        arcs: Vec<(String, String, Sense, DelayModel)>,
        sync: Option<PendingSync>,
        line: usize,
    }
    struct PendingSync {
        kind: SyncKind,
        data: String,
        control: String,
        out: String,
        outbar: Option<String>,
        setup: Time,
        hold: Time,
        d_cx: Time,
        d_dx: Time,
        sense: Sense,
        output_delay: DelayModel,
    }

    fn finish(lib: &mut Library, cell: PendingCell) -> Result<(), ParseError> {
        let err = |msg: String| ParseError::new(cell.line, msg);
        let mut iface = LeafDef::new(cell.name.clone());
        for (name, dir, _) in &cell.pins {
            iface = iface.pin(name.clone(), *dir);
        }
        let pin = |name: &str| {
            iface
                .pin_by_name(name)
                .ok_or_else(|| err(format!("cell {:?} has no pin {name:?}", cell.name)))
        };
        let function = match &cell.sync {
            Some(s) => Function::Sync(SyncSpec {
                kind: s.kind,
                data: pin(&s.data)?,
                control: pin(&s.control)?,
                output: pin(&s.out)?,
                output_bar: match &s.outbar {
                    Some(p) => Some(pin(p)?),
                    None => None,
                },
                setup: s.setup,
                hold: s.hold,
                d_cx: s.d_cx,
                d_dx: s.d_dx,
                control_sense: s.sense,
                output_delay: s.output_delay,
            }),
            None => {
                let mut arcs = Vec::new();
                for (from, to, sense, delay) in &cell.arcs {
                    arcs.push(TimingArc {
                        from: pin(from)?,
                        to: pin(to)?,
                        sense: *sense,
                        delay: *delay,
                    });
                }
                Function::Combinational(arcs)
            }
        };
        let caps = cell.pins.iter().map(|(_, _, c)| *c).collect();
        lib.add_cell(Cell::new(
            iface,
            function,
            caps,
            DriveStrength(cell.drive),
            cell.family.clone(),
            cell.area,
        ));
        Ok(())
    }

    let mut lib: Option<Library> = None;
    let mut pending: Option<PendingCell> = None;

    for (index, raw) in text.lines().enumerate() {
        let lineno = index + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let mut tokens = line.split_whitespace();
        let Some(keyword) = tokens.next() else {
            continue;
        };
        let err = |msg: String| ParseError::new(lineno, msg);
        macro_rules! tok {
            ($what:expr) => {
                tokens
                    .next()
                    .ok_or_else(|| err(format!("expected {}", $what)))
            };
        }
        macro_rules! num {
            ($what:expr, $ty:ty) => {
                tok!($what)?
                    .parse::<$ty>()
                    .map_err(|e| err(format!("bad {}: {e}", $what)))
            };
        }
        match keyword {
            "library" => {
                let name = tok!("library name")?;
                if lib.is_some() {
                    return Err(err("duplicate library directive".into()));
                }
                lib = Some(Library::new(name));
            }
            "wireload" => {
                let base = num!("wireload base", i64)?;
                let per = num!("wireload per-fanout", i64)?;
                lib.as_mut()
                    .ok_or_else(|| err("wireload before library".into()))?
                    .set_wire_load(WireLoad::new(base, per));
            }
            "cell" => {
                let library = lib
                    .as_mut()
                    .ok_or_else(|| err("cell before library".into()))?;
                if let Some(done) = pending.take() {
                    finish(library, done)?;
                }
                let name = tok!("cell name")?.to_owned();
                let mut family = name.clone();
                let mut drive = 1u8;
                let mut area = 1u32;
                while let Some(key) = tokens.next() {
                    match key {
                        "family" => family = tok!("family")?.to_owned(),
                        "drive" => drive = num!("drive", u8)?,
                        "area" => area = num!("area", u32)?,
                        other => return Err(err(format!("unknown cell field {other:?}"))),
                    }
                }
                pending = Some(PendingCell {
                    name,
                    family,
                    drive,
                    area,
                    pins: Vec::new(),
                    arcs: Vec::new(),
                    sync: None,
                    line: lineno,
                });
            }
            "pin" => {
                let cell = pending
                    .as_mut()
                    .ok_or_else(|| err("pin outside a cell".into()))?;
                let name = tok!("pin name")?.to_owned();
                let dir = match tok!("pin direction")? {
                    "in" => PinDir::Input,
                    "out" => PinDir::Output,
                    other => return Err(err(format!("pin direction {other:?}"))),
                };
                let mut cap = 0i64;
                while let Some(key) = tokens.next() {
                    match key {
                        "cap" => cap = num!("cap", i64)?,
                        other => return Err(err(format!("unknown pin field {other:?}"))),
                    }
                }
                cell.pins.push((name, dir, cap));
            }
            "arc" => {
                let cell = pending
                    .as_mut()
                    .ok_or_else(|| err("arc outside a cell".into()))?;
                let from = tok!("arc input")?.to_owned();
                let to = tok!("arc output")?.to_owned();
                let sense = parse_sense(tok!("arc sense")?).map_err(&err)?;
                let mut intrinsic = RiseFall::splat(Time::ZERO);
                let mut slope = RiseFall::splat(0i64);
                let mut minscale: Option<u8> = None;
                while let Some(key) = tokens.next() {
                    match key {
                        "intrinsic" => {
                            intrinsic = RiseFall::new(
                                Time::from_ps(num!("intrinsic rise", i64)?),
                                Time::from_ps(num!("intrinsic fall", i64)?),
                            );
                        }
                        "slope" => {
                            slope =
                                RiseFall::new(num!("slope rise", i64)?, num!("slope fall", i64)?);
                        }
                        "minscale" => minscale = Some(num!("minscale", u8)?),
                        other => return Err(err(format!("unknown arc field {other:?}"))),
                    }
                }
                let mut delay = DelayModel::new(intrinsic, slope);
                if let Some(pct) = minscale {
                    delay = delay.with_min_scale_pct(pct);
                }
                cell.arcs.push((from, to, sense, delay));
            }
            "sync" => {
                let cell = pending
                    .as_mut()
                    .ok_or_else(|| err("sync outside a cell".into()))?;
                let kind = match tok!("sync kind")? {
                    "trailing" => SyncKind::TrailingEdge,
                    "transparent" => SyncKind::Transparent,
                    "tristate" => SyncKind::ClockedTristate,
                    other => return Err(err(format!("unknown sync kind {other:?}"))),
                };
                let mut sync = PendingSync {
                    kind,
                    data: String::new(),
                    control: String::new(),
                    out: String::new(),
                    outbar: None,
                    setup: Time::ZERO,
                    hold: Time::ZERO,
                    d_cx: Time::ZERO,
                    d_dx: Time::ZERO,
                    sense: Sense::Positive,
                    output_delay: DelayModel::zero(),
                };
                while let Some(key) = tokens.next() {
                    match key {
                        "data" => sync.data = tok!("data pin")?.to_owned(),
                        "control" => sync.control = tok!("control pin")?.to_owned(),
                        "out" => sync.out = tok!("out pin")?.to_owned(),
                        "outbar" => sync.outbar = Some(tok!("outbar pin")?.to_owned()),
                        "setup" => sync.setup = Time::from_ps(num!("setup", i64)?),
                        "hold" => sync.hold = Time::from_ps(num!("hold", i64)?),
                        "dcx" => sync.d_cx = Time::from_ps(num!("dcx", i64)?),
                        "ddx" => sync.d_dx = Time::from_ps(num!("ddx", i64)?),
                        "sense" => {
                            sync.sense = match tok!("sense")? {
                                "pos" => Sense::Positive,
                                "neg" => Sense::Negative,
                                other => return Err(err(format!("sync sense {other:?}"))),
                            }
                        }
                        "outslope" => {
                            sync.output_delay = DelayModel::new(
                                RiseFall::splat(Time::ZERO),
                                RiseFall::new(
                                    num!("outslope rise", i64)?,
                                    num!("outslope fall", i64)?,
                                ),
                            );
                        }
                        other => return Err(err(format!("unknown sync field {other:?}"))),
                    }
                }
                if sync.data.is_empty() || sync.control.is_empty() || sync.out.is_empty() {
                    return Err(err("sync needs data, control and out pins".into()));
                }
                cell.sync = Some(sync);
            }
            other => return Err(err(format!("unknown keyword {other:?}"))),
        }
    }
    let mut library = lib.ok_or_else(|| ParseError::new(0, "no library directive"))?;
    if let Some(done) = pending.take() {
        finish(&mut library, done)?;
    }
    Ok(library)
}

fn parse_sense(token: &str) -> Result<Sense, String> {
    match token {
        "positive" => Ok(Sense::Positive),
        "negative" => Ok(Sense::Negative),
        "nonunate" => Ok(Sense::NonUnate),
        other => Err(format!("unknown sense {other:?}")),
    }
}

fn sense_token(sense: Sense) -> &'static str {
    match sense {
        Sense::Positive => "positive",
        Sense::Negative => "negative",
        Sense::NonUnate => "nonunate",
    }
}

/// Serializes a library to liberty-lite text.
pub fn write_lib(library: &Library) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "library {}", library.name());
    let wl = library.wire_load();
    let _ = writeln!(out, "wireload {} {}", wl.base_ff, wl.per_fanout_ff);
    for (_, cell) in library.cells() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "cell {} family {} drive {} area {}",
            cell.name(),
            cell.family(),
            cell.drive().0,
            cell.area()
        );
        for (slot, pin) in cell.interface().pins() {
            let dir = match pin.dir() {
                PinDir::Input => "in",
                PinDir::Output => "out",
            };
            let cap = cell.pin_cap_ff(slot);
            if cap != 0 {
                let _ = writeln!(out, "  pin {} {dir} cap {cap}", pin.name());
            } else {
                let _ = writeln!(out, "  pin {} {dir}", pin.name());
            }
        }
        match cell.function() {
            Function::Combinational(arcs) => {
                for arc in arcs {
                    let iface = cell.interface();
                    let _ = writeln!(
                        out,
                        "  arc {} {} {} intrinsic {} {} slope {} {} minscale {}",
                        iface.pin_def(arc.from).name(),
                        iface.pin_def(arc.to).name(),
                        sense_token(arc.sense),
                        arc.delay.intrinsic().rise.as_ps(),
                        arc.delay.intrinsic().fall.as_ps(),
                        arc.delay.slope_ps_per_ff().rise,
                        arc.delay.slope_ps_per_ff().fall,
                        arc.delay.min_scale_pct(),
                    );
                }
            }
            Function::Sync(spec) => {
                let iface = cell.interface();
                let kind = match spec.kind {
                    SyncKind::TrailingEdge => "trailing",
                    SyncKind::Transparent => "transparent",
                    SyncKind::ClockedTristate => "tristate",
                };
                let mut line = format!(
                    "  sync {kind} data {} control {} out {}",
                    iface.pin_def(spec.data).name(),
                    iface.pin_def(spec.control).name(),
                    iface.pin_def(spec.output).name(),
                );
                if let Some(bar) = spec.output_bar {
                    let _ = write!(line, " outbar {}", iface.pin_def(bar).name());
                }
                let _ = write!(
                    line,
                    " setup {} hold {} dcx {} ddx {} sense {} outslope {} {}",
                    spec.setup.as_ps(),
                    spec.hold.as_ps(),
                    spec.d_cx.as_ps(),
                    spec.d_dx.as_ps(),
                    match spec.control_sense {
                        Sense::Negative => "neg",
                        _ => "pos",
                    },
                    spec.output_delay.slope_ps_per_ff().rise,
                    spec.output_delay.slope_ps_per_ff().fall,
                );
                let _ = writeln!(out, "{line}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_units::Transition;

    const SAMPLE: &str = "\
# a two-cell library
library tiny
wireload 2 3

cell INV_X1 family INV drive 1 area 2
  pin A in cap 4
  pin Y out
  arc A Y negative intrinsic 60 45 slope 6 5 minscale 50

cell DLATCH family DLATCH drive 1 area 10
  pin D in cap 5
  pin G in cap 3
  pin Q out
  sync transparent data D control G out Q setup 250 hold 100 dcx 400 ddx 350 sense pos outslope 7 7
";

    #[test]
    fn parse_sample_library() {
        let lib = parse_lib(SAMPLE).unwrap();
        assert_eq!(lib.name(), "tiny");
        assert_eq!(lib.wire_load(), WireLoad::new(2, 3));
        assert_eq!(lib.cells().count(), 2);
        let inv = lib.cell(lib.cell_by_name("INV_X1").unwrap());
        assert_eq!(inv.family(), "INV");
        assert_eq!(inv.arcs().len(), 1);
        assert_eq!(inv.arcs()[0].sense, Sense::Negative);
        assert_eq!(
            inv.arcs()[0].delay.eval(10).max[Transition::Rise],
            Time::from_ps(120)
        );
        let lat = lib.cell(lib.cell_by_name("DLATCH").unwrap());
        let spec = lat.sync_spec().unwrap();
        assert_eq!(spec.kind, SyncKind::Transparent);
        assert_eq!(spec.setup, Time::from_ps(250));
        assert_eq!(spec.d_dx, Time::from_ps(350));
        assert_eq!(spec.control_sense, Sense::Positive);
    }

    #[test]
    fn sc89_roundtrips() {
        let original = hb_cells::sc89();
        let text = write_lib(&original);
        let parsed = parse_lib(&text).unwrap();
        assert_eq!(parsed.cells().count(), original.cells().count());
        assert_eq!(parsed.wire_load(), original.wire_load());
        for (_, cell) in original.cells() {
            let other_id = parsed
                .cell_by_name(cell.name())
                .unwrap_or_else(|| panic!("{} missing", cell.name()));
            let other = parsed.cell(other_id);
            assert_eq!(other.family(), cell.family());
            assert_eq!(other.drive(), cell.drive());
            assert_eq!(other.area(), cell.area());
            assert_eq!(other.arcs().len(), cell.arcs().len());
            for (a, b) in cell.arcs().iter().zip(other.arcs()) {
                assert_eq!(a.sense, b.sense, "{}", cell.name());
                assert_eq!(a.delay.eval(17), b.delay.eval(17), "{}", cell.name());
            }
            match (cell.sync_spec(), other.sync_spec()) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.kind, b.kind);
                    assert_eq!(a.setup, b.setup);
                    assert_eq!(a.hold, b.hold);
                    assert_eq!(a.d_cx, b.d_cx);
                    assert_eq!(a.d_dx, b.d_dx);
                    assert_eq!(a.control_sense, b.control_sense);
                    assert_eq!(a.output_bar.is_some(), b.output_bar.is_some());
                }
                _ => panic!("{}: function kind changed", cell.name()),
            }
        }
        // Idempotent emission.
        assert_eq!(write_lib(&parsed), text);
    }

    #[test]
    fn errors() {
        assert!(parse_lib("").unwrap_err().message().contains("no library"));
        let e = parse_lib("cell X\n").unwrap_err();
        assert!(e.message().contains("before library"));
        let e = parse_lib("library l\npin A in\n").unwrap_err();
        assert!(e.message().contains("outside a cell"));
        let e = parse_lib("library l\ncell X\n  arc A Y sideways\n").unwrap_err();
        assert!(e.message().contains("unknown sense"));
        let e = parse_lib("library l\ncell X\n  pin A in\n  arc A Y positive\n").unwrap_err();
        assert!(e.message().contains("no pin"), "{e}");
        let e = parse_lib("library l\ncell X\n  sync trailing data D\n").unwrap_err();
        assert!(
            e.message().contains("data, control and out"),
            "{}",
            e.message()
        );
    }
}
