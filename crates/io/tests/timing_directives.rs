//! Parsing and emission of `.hum` boundary-timing directives.

use hb_cells::sc89;
use hb_io::{parse_hum, write_hum_with_timing, TimingDirective};
use hb_units::{Time, Transition};

const DESIGN: &str = "\
design t
module top
  port in a ck
  port out y
  inst u INV_X1 A=a Y=w
  inst ff DFF D=w CK=ck Q=y
end
top top
clock ck period 20ns rise 0ns fall 10ns
clockport ck ck
arrive a ck rise 2ns
require y ck rise@0 -0.5ns
";

#[test]
fn directives_parse() {
    let lib = sc89();
    let file = parse_hum(DESIGN, &lib).unwrap();
    assert_eq!(file.timing.len(), 3);
    assert_eq!(
        file.timing[0],
        TimingDirective::ClockPort {
            port: "ck".into(),
            clock: "ck".into()
        }
    );
    assert_eq!(
        file.timing[1],
        TimingDirective::Arrive {
            port: "a".into(),
            edge: ("ck".into(), Transition::Rise, 0),
            offset: Time::from_ns(2),
        }
    );
    assert_eq!(
        file.timing[2],
        TimingDirective::Require {
            port: "y".into(),
            edge: ("ck".into(), Transition::Rise, 0),
            offset: Time::from_ps(-500),
        }
    );
}

#[test]
fn directives_roundtrip() {
    let lib = sc89();
    let file = parse_hum(DESIGN, &lib).unwrap();
    let text = write_hum_with_timing(&file.design, &file.clocks, &file.timing);
    assert!(text.contains("clockport ck ck"), "{text}");
    assert!(text.contains("arrive a ck rise 2ns"), "{text}");
    assert!(text.contains("require y ck rise -0.500ns"), "{text}");
    let again = parse_hum(&text, &lib).unwrap();
    assert_eq!(again.timing, file.timing);
}

#[test]
fn occurrences_roundtrip() {
    let lib = sc89();
    let text = "\
module top
end
top top
clock fast period 5ns rise 0ns fall 2ns
arrive x fast fall@3 1ns
";
    let file = parse_hum(text, &lib).unwrap();
    assert_eq!(
        file.timing[0],
        TimingDirective::Arrive {
            port: "x".into(),
            edge: ("fast".into(), Transition::Fall, 3),
            offset: Time::from_ns(1),
        }
    );
    let emitted = write_hum_with_timing(&file.design, &file.clocks, &file.timing);
    assert!(emitted.contains("arrive x fast fall@3 1ns"), "{emitted}");
}

#[test]
fn directive_errors() {
    let lib = sc89();
    for (bad, needle) in [
        ("clockport onlyport\n", "needs a clock"),
        ("arrive p ck sideways 1ns\n", "rise or fall"),
        ("arrive p ck rise\n", "needs an offset"),
        ("arrive p ck rise@x 1ns\n", "bad occurrence"),
        ("require p ck rise nonsense\n", "bad time"),
    ] {
        let err = parse_hum(bad, &lib).unwrap_err();
        assert!(
            err.message().contains(needle),
            "{bad:?}: got {:?}",
            err.message()
        );
    }
}
