//! Algorithms 1 and 2 of the paper.
//!
//! **Algorithm 1 (identification of slow paths)** iterates *complete
//! slack transfer* — first forward until a fixpoint, then backward —
//! followed by *partial* transfers that return some time to every path
//! that is fast enough, so that fast paths end with strictly positive
//! slacks and every node on a too-slow path ends with a non-positive
//! slack. Because the simplified synchronising-element model is used,
//! marginally-fast-enough paths may be reported slow (pessimistic-safe).
//!
//! **Algorithm 2 (timing-constraint generation)** starts from
//! Algorithm 1's offsets and *snatches* time — moving latch offsets even
//! when the donating side cannot spare the time — backward to settle the
//! actual ready times of nodes on slow paths, then forward to settle the
//! actual required times.

use hb_units::Time;

use crate::analysis::{Prepared, SlackView};
use crate::engine::SlackCache;
use crate::sync::Replica;

/// Iteration counters from Algorithm 1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Algorithm1Stats {
    /// Complete forward slack-transfer cycles performed (iteration 1).
    pub forward_cycles: usize,
    /// Complete backward cycles (iteration 2).
    pub backward_cycles: usize,
    /// Partial forward cycles (iteration 3).
    pub partial_forward_cycles: usize,
    /// Partial backward cycles (iteration 4).
    pub partial_backward_cycles: usize,
    /// Whether the early-out fired (all slacks strictly positive).
    pub converged_early: bool,
    /// Whether the safety cap on cycles was hit.
    pub cycle_cap_hit: bool,
}

/// Iteration counters from Algorithm 2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Algorithm2Stats {
    /// Backward snatch cycles (iteration 1).
    pub backward_snatch_cycles: usize,
    /// Forward snatch cycles (iteration 2).
    pub forward_snatch_cycles: usize,
}

/// Runs Algorithm 1, mutating `replicas` in place, and returns the final
/// slack view plus statistics.
pub(crate) fn algorithm1(
    prep: &Prepared<'_>,
    replicas: &mut [Replica],
    cache: &mut SlackCache,
) -> (SlackView, Algorithm1Stats) {
    let mut stats = Algorithm1Stats::default();
    let cap = prep.options.max_cycles;
    let divisor = prep.options.partial_divisor.max(2);

    // Iteration 1: complete forward slack transfer to a fixpoint.
    loop {
        let view = prep.compute_slacks(replicas, cache);
        if view.all_positive() {
            stats.converged_early = true;
            return (view, stats);
        }
        let mut any = false;
        for (k, r) in replicas.iter_mut().enumerate() {
            let n_x = view.replica_in[k];
            if n_x > Time::ZERO && n_x.is_finite() && r.transfer_forward(n_x) > Time::ZERO {
                any = true;
            }
        }
        if !any {
            break;
        }
        stats.forward_cycles += 1;
        if stats.forward_cycles >= cap {
            stats.cycle_cap_hit = true;
            break;
        }
    }

    // Iteration 2: complete backward slack transfer to a fixpoint.
    loop {
        let view = prep.compute_slacks(replicas, cache);
        if view.all_positive() {
            stats.converged_early = true;
            return (view, stats);
        }
        let mut any = false;
        for (k, r) in replicas.iter_mut().enumerate() {
            let n_y = view.replica_out[k];
            if n_y > Time::ZERO && n_y.is_finite() && r.transfer_backward(n_y) > Time::ZERO {
                any = true;
            }
        }
        if !any {
            break;
        }
        stats.backward_cycles += 1;
        if stats.backward_cycles >= cap {
            stats.cycle_cap_hit = true;
            break;
        }
    }

    // Iteration 3: partial forward transfer, once per complete backward
    // cycle made — returns time to paths that are fast enough so they
    // finish with strictly positive slack.
    for _ in 0..stats.backward_cycles {
        let view = prep.compute_slacks(replicas, cache);
        let mut any = false;
        for (k, r) in replicas.iter_mut().enumerate() {
            let n_x = view.replica_in[k];
            if n_x > Time::ZERO && n_x.is_finite() && r.transfer_forward(n_x / divisor) > Time::ZERO
            {
                any = true;
            }
        }
        stats.partial_forward_cycles += 1;
        if !any {
            break;
        }
    }

    // Iteration 4: partial backward transfer, once per complete forward
    // cycle made.
    for _ in 0..stats.forward_cycles {
        let view = prep.compute_slacks(replicas, cache);
        let mut any = false;
        for (k, r) in replicas.iter_mut().enumerate() {
            let n_y = view.replica_out[k];
            if n_y > Time::ZERO
                && n_y.is_finite()
                && r.transfer_backward(n_y / divisor) > Time::ZERO
            {
                any = true;
            }
        }
        stats.partial_backward_cycles += 1;
        if !any {
            break;
        }
    }

    // Final step: find all node slacks.
    let view = prep.compute_slacks(replicas, cache);
    (view, stats)
}

/// Runs Algorithm 2 starting from Algorithm-1 offsets. Returns the slack
/// view whose `ready` tables hold the settled ready times (recorded
/// after backward snatching), the view whose `required` tables hold the
/// settled required times (recorded after forward snatching), and
/// statistics.
pub(crate) fn algorithm2(
    prep: &Prepared<'_>,
    replicas: &mut [Replica],
    cache: &mut SlackCache,
) -> (SlackView, SlackView, Algorithm2Stats) {
    let mut stats = Algorithm2Stats::default();
    let cap = prep.options.max_cycles;

    // Iteration 1: snatch time backward until no time is snatched, then
    // record ready times at all cell inputs. Backward snatching: when a
    // replica's *input* terminal is too slow (negative slack), move its
    // closure later by up to the deficit, regardless of the output side.
    let ready_view = loop {
        let view = prep.compute_slacks(replicas, cache);
        let mut any = false;
        for (k, r) in replicas.iter_mut().enumerate() {
            let n_x = view.replica_in[k];
            if n_x < Time::ZERO && n_x.is_finite() && r.transfer_backward(-n_x) > Time::ZERO {
                any = true;
            }
        }
        stats.backward_snatch_cycles += 1;
        if !any || stats.backward_snatch_cycles >= cap {
            break view;
        }
    };

    // Iteration 2: snatch time forward until no time is snatched, then
    // record required times at all cell outputs. Forward snatching: when
    // a replica's *output* terminal is too slow, move its assertion
    // earlier by up to the deficit.
    let required_view = loop {
        let view = prep.compute_slacks(replicas, cache);
        let mut any = false;
        for (k, r) in replicas.iter_mut().enumerate() {
            let n_y = view.replica_out[k];
            if n_y < Time::ZERO && n_y.is_finite() && r.transfer_forward(-n_y) > Time::ZERO {
                any = true;
            }
        }
        stats.forward_snatch_cycles += 1;
        if !any || stats.forward_snatch_cycles >= cap {
            break view;
        }
    };

    (ready_view, required_view, stats)
}
