//! The `serve` and `query` subcommands: the thin shell around
//! [`hb_server`].
//!
//! ```text
//! hummingbird serve [--listen ADDR] [--stdio] [--reactor]
//!                   [--library FILE] [--max-conns N]
//! hummingbird query ADDR <request> [args...] [key=value...]
//! hummingbird query ADDR --pipeline [FILE]
//!
//! requests:
//!   load FILE                 send a .hum (or .blif) design to the daemon
//!   analyze | constraints     (re-)run the analysis on the resident design
//!   slack NODE [NODE...]      slack at nets or synchronizer instances;
//!                             several nodes batch into one request
//!   worst-paths [K]           the K slowest paths (default 5)
//!   eco resize INST [STEPS]   retarget an instance's drive strength
//!   eco scale-net NET PCT     scale a net's load to PCT percent
//!   metrics                   Prometheus-style text exposition of the
//!                             daemon's counters and histograms
//!   dump | stats | shutdown
//! ```
//!
//! `serve` prints `listening on IP:PORT` once the socket is bound (bind
//! port 0 for an ephemeral port), then blocks until a client sends
//! `shutdown`. With `--reactor` the daemon serves every connection from
//! one `poll(2)` event loop instead of a thread per connection — the
//! c10k transport, with identical replies.
//!
//! `query --pipeline` reads one request per line from FILE (stdin when
//! absent; blank lines and `#` comments skipped), writes them down the
//! connection in pipelined windows, and prints the replies in order —
//! N requests for one round trip. Any trailing `key=value` words on a
//! `query` are passed through verbatim as request arguments — e.g.
//! `clock=ck:20:0:10` when loading a BLIF netlist.

use std::io::Write;

use hb_io::Frame;
use hb_server::{serve_stream, Client, Server, ServerOptions};

use crate::{load_library, CliError};

const SERVE_USAGE: &str = "usage: hummingbird serve [--listen ADDR] [--stdio] [--reactor] \
[--library LIB.txt] [--max-conns N]";
const QUERY_USAGE: &str = "usage: hummingbird query ADDR \
<load FILE | analyze | constraints | slack NODE [NODE...] | worst-paths [K] | \
eco resize INST [STEPS] | eco scale-net NET PCT | dump | stats | metrics | shutdown> \
[key=value...]\n       hummingbird query ADDR --pipeline [FILE]";

/// Frames per pipelined window: enough to amortise the round trip,
/// small enough that neither side's socket buffer fills with requests
/// while replies wait unread (which would deadlock both peers).
const PIPELINE_WINDOW: usize = 128;

/// `hummingbird serve`: bind, announce, block until `shutdown`.
pub fn run_serve(args: &[&str], out: &mut impl Write) -> Result<u8, CliError> {
    let mut listen = "127.0.0.1:0".to_owned();
    let mut stdio = false;
    let mut reactor = false;
    let mut library = None;
    let mut options = ServerOptions::default();
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--listen" => {
                listen = it
                    .next()
                    .ok_or_else(|| CliError::usage("--listen needs a value"))?
                    .to_string();
            }
            "--stdio" => stdio = true,
            "--reactor" => reactor = true,
            "--library" => library = it.next().map(|s| s.to_string()),
            "--max-conns" => {
                options.max_connections = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| CliError::usage("--max-conns needs a positive count"))?;
            }
            other => {
                return Err(CliError::usage(format!(
                    "unexpected argument {other:?}\n{SERVE_USAGE}"
                )))
            }
        }
    }
    let library = load_library(library.as_deref())?;

    if stdio {
        // The TCP server arms in `run`; the stdio daemon arms here so
        // `query metrics` histograms carry data in both modes.
        hb_obs::arm();
        let stdin = std::io::stdin();
        serve_stream(library, stdin.lock(), out)
            .map_err(|e| CliError::io(format!("serve --stdio: {e}")))?;
        return Ok(0);
    }

    let server = Server::bind(&listen, library, options)
        .map_err(|e| CliError::io(format!("cannot bind {listen}: {e}")))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::io(format!("serve: {e}")))?;
    // Announce before blocking so wrappers can scrape the port.
    writeln!(out, "listening on {addr}").map_err(|e| CliError::io(e.to_string()))?;
    out.flush().map_err(|e| CliError::io(e.to_string()))?;
    if reactor {
        server.run_reactor()
    } else {
        server.run()
    }
    .map_err(|e| CliError::io(format!("serve: {e}")))?;
    writeln!(out, "shutdown complete").map_err(|e| CliError::io(e.to_string()))?;
    Ok(0)
}

/// `hummingbird query`: one request, one reply, one exit code.
pub fn run_query(args: &[&str], out: &mut impl Write) -> Result<u8, CliError> {
    let (addr, rest) = args
        .split_first()
        .ok_or_else(|| CliError::usage(QUERY_USAGE))?;
    let (&cmd, rest) = rest
        .split_first()
        .ok_or_else(|| CliError::usage(QUERY_USAGE))?;
    if cmd == "--pipeline" {
        return run_query_pipeline(addr, rest.first().copied(), out);
    }
    let request = build_request(cmd, rest)?;

    // Overload-aware: a daemon at its connection cap (or holding the
    // session lock past its deadline) answers `busy retry_after_ms=N`;
    // retry with backoff instead of failing the first shed.
    let reply = Client::request_with_backoff(*addr, &request, 5)
        .map_err(|e| CliError::io(format!("{addr}: {e}")))?;

    print_reply(&reply, out)?;

    if reply.verb == "error" {
        let code = reply.get("code").unwrap_or("unknown");
        return Err(CliError::analysis(format!(
            "daemon refused {cmd:?}: {code}"
        )));
    }
    // Analysis-bearing replies carry the one-shot driver's verdict.
    Ok(match reply.get("ok") {
        Some("0") => 1,
        _ => 0,
    })
}

/// `hummingbird query ADDR --pipeline [FILE]`: one request per line,
/// written down the connection in pipelined windows, replies printed
/// in order. Exit code 1 if any reply was an error or a failed-timing
/// verdict.
fn run_query_pipeline(
    addr: &str,
    file: Option<&str>,
    out: &mut impl Write,
) -> Result<u8, CliError> {
    let text = match file {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?,
        None => std::io::read_to_string(std::io::stdin())
            .map_err(|e| CliError::io(format!("cannot read stdin: {e}")))?,
    };
    let mut requests = Vec::new();
    for line in text.lines() {
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.split_first() {
            None => continue,
            Some((cmd, _)) if cmd.starts_with('#') => continue,
            Some((cmd, rest)) => requests.push(build_request(cmd, rest)?),
        }
    }
    if requests.is_empty() {
        return Err(CliError::usage("query --pipeline: no requests to send"));
    }

    let mut client = Client::connect(addr).map_err(|e| CliError::io(format!("{addr}: {e}")))?;
    let mut code = 0u8;
    for window in requests.chunks(PIPELINE_WINDOW) {
        let replies = client
            .request_pipelined(window)
            .map_err(|e| CliError::io(format!("{addr}: {e}")))?;
        for reply in &replies {
            print_reply(reply, out)?;
            if reply.verb == "error" || reply.get("ok") == Some("0") {
                code = 1;
            }
        }
    }
    Ok(code)
}

/// Writes one reply: the header line, then the payload verbatim.
fn print_reply(reply: &Frame, out: &mut impl Write) -> Result<(), CliError> {
    let io = |e: std::io::Error| CliError::io(format!("write failed: {e}"));
    let mut line = reply.verb.clone();
    for (key, value) in &reply.args {
        line.push(' ');
        line.push_str(key);
        line.push('=');
        line.push_str(value);
    }
    writeln!(out, "{line}").map_err(io)?;
    if let Some(payload) = &reply.payload {
        out.write_all(payload.as_bytes()).map_err(io)?;
        if !payload.ends_with('\n') {
            writeln!(out).map_err(io)?;
        }
    }
    Ok(())
}

/// Translates a query command line into a request frame. Trailing
/// `key=value` words pass through as arguments.
fn build_request(cmd: &str, rest: &[&str]) -> Result<Frame, CliError> {
    let need = |what: &str, value: Option<&&str>| -> Result<String, CliError> {
        value
            .map(|s| s.to_string())
            .ok_or_else(|| CliError::usage(format!("query {cmd} needs {what}\n{QUERY_USAGE}")))
    };
    let (mut frame, used) = match cmd {
        "hello" | "analyze" | "constraints" | "dump" | "stats" | "metrics" | "shutdown" => {
            (Frame::new(cmd), 0)
        }
        "load" => {
            let path = need("a design file", rest.first())?;
            let text = std::fs::read_to_string(&path)
                .map_err(|e| CliError::io(format!("cannot read {path}: {e}")))?;
            let mut frame = Frame::new("load").with_payload(text);
            if path.ends_with(".blif") {
                frame = frame.arg("format", "blif");
            }
            (frame, 1)
        }
        "slack" => {
            // Every leading non-`key=value` word is a node; several
            // nodes ride in one batched request.
            let nodes: Vec<&str> = rest
                .iter()
                .take_while(|s| !s.contains('='))
                .copied()
                .collect();
            need("a node name", nodes.first())?;
            let mut frame = Frame::new("slack");
            for node in &nodes {
                frame = frame.arg("node", *node);
            }
            (frame, nodes.len())
        }
        "worst-paths" => match rest.first().filter(|s| !s.contains('=')) {
            Some(&k) => (Frame::new("worst-paths").arg("k", k), 1),
            None => (Frame::new("worst-paths"), 0),
        },
        "eco" => match rest.first().copied() {
            Some("resize") => {
                let inst = need("an instance name", rest.get(1))?;
                let steps = rest.get(2).filter(|s| !s.contains('=')).copied();
                let frame = Frame::new("eco")
                    .arg("op", "resize")
                    .arg("inst", inst)
                    .arg("steps", steps.unwrap_or("1"));
                (frame, if steps.is_some() { 3 } else { 2 })
            }
            Some("scale-net") => (
                Frame::new("eco")
                    .arg("op", "scale-net")
                    .arg("net", need("a net name", rest.get(1))?)
                    .arg("percent", need("a percentage", rest.get(2))?),
                3,
            ),
            _ => {
                return Err(CliError::usage(format!(
                    "query eco needs resize or scale-net\n{QUERY_USAGE}"
                )))
            }
        },
        other => {
            return Err(CliError::usage(format!(
                "unknown request {other:?}\n{QUERY_USAGE}"
            )))
        }
    };
    for extra in &rest[used..] {
        let (key, value) = extra.split_once('=').ok_or_else(|| {
            CliError::usage(format!("expected key=value, got {extra:?}\n{QUERY_USAGE}"))
        })?;
        frame = frame.arg(key, value);
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_building() {
        let f = build_request("analyze", &["latch=edge"]).unwrap();
        assert_eq!(f.verb, "analyze");
        assert_eq!(f.get("latch"), Some("edge"));

        let f = build_request("slack", &["mid"]).unwrap();
        assert_eq!(f.get("node"), Some("mid"));

        // Multiple nodes batch into one request; key=value trailers
        // still pass through.
        let f = build_request("slack", &["a", "b", "c", "latch=edge"]).unwrap();
        assert_eq!(f.get_all("node").collect::<Vec<_>>(), ["a", "b", "c"]);
        assert_eq!(f.get("latch"), Some("edge"));

        let f = build_request("worst-paths", &[]).unwrap();
        assert!(f.get("k").is_none());
        let f = build_request("worst-paths", &["7"]).unwrap();
        assert_eq!(f.get("k"), Some("7"));

        let f = build_request("eco", &["resize", "u1"]).unwrap();
        assert_eq!(f.get("steps"), Some("1"));
        let f = build_request("eco", &["resize", "u1", "-1"]).unwrap();
        assert_eq!(f.get("steps"), Some("-1"));
        let f = build_request("eco", &["scale-net", "w", "150"]).unwrap();
        assert_eq!(f.get("percent"), Some("150"));

        assert!(build_request("eco", &[]).is_err());
        assert!(build_request("slack", &[]).is_err());
        assert!(build_request("teleport", &[]).is_err());
        assert!(build_request("analyze", &["positional"]).is_err());
    }
}
