//! Clock waveform descriptions.

use std::collections::HashMap;
use std::fmt;

use hb_units::Time;

use crate::timeline::Timeline;

/// Handle to a [`Clock`] within a [`ClockSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClockId(pub(crate) u32);

impl ClockId {
    /// Returns the raw index.
    pub fn as_raw(self) -> u32 {
        self.0
    }

    pub(crate) fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clk{}", self.0)
    }
}

/// A periodic clock waveform with one rising and one falling edge per
/// period.
///
/// The signal is high in the window `[rise, fall)` (modulo the period),
/// which may wrap around the period boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clock {
    name: String,
    period: Time,
    rise: Time,
    fall: Time,
}

impl Clock {
    /// The clock name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The clock period.
    pub fn period(&self) -> Time {
        self.period
    }

    /// The rising-edge offset within the period, in `[0, period)`.
    pub fn rise(&self) -> Time {
        self.rise
    }

    /// The falling-edge offset within the period, in `[0, period)`.
    pub fn fall(&self) -> Time {
        self.fall
    }

    /// The width of the high phase.
    pub fn high_width(&self) -> Time {
        (self.fall - self.rise).rem_euclid_end(self.period)
    }

    /// The width of the low phase.
    pub fn low_width(&self) -> Time {
        (self.rise - self.fall).rem_euclid_end(self.period)
    }
}

/// Errors from [`ClockSet`] construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClockError {
    /// The period was not strictly positive.
    NonPositivePeriod {
        /// The clock being added.
        name: String,
    },
    /// An edge offset fell outside `[0, period)`.
    EdgeOutOfRange {
        /// The clock being added.
        name: String,
    },
    /// Rise and fall coincide (a zero- or full-width pulse).
    CoincidentEdges {
        /// The clock being added.
        name: String,
    },
    /// A clock with this name already exists.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// The combined overall period would overflow or is excessive.
    OverallPeriodTooLarge {
        /// The clock that pushed it over.
        name: String,
    },
}

impl fmt::Display for ClockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockError::NonPositivePeriod { name } => {
                write!(f, "clock {name:?} must have a positive period")
            }
            ClockError::EdgeOutOfRange { name } => {
                write!(f, "clock {name:?} edges must lie in [0, period)")
            }
            ClockError::CoincidentEdges { name } => {
                write!(f, "clock {name:?} has coincident rise and fall edges")
            }
            ClockError::DuplicateName { name } => write!(f, "duplicate clock name {name:?}"),
            ClockError::OverallPeriodTooLarge { name } => write!(
                f,
                "adding clock {name:?} makes the overall period unreasonably large"
            ),
        }
    }
}

impl std::error::Error for ClockError {}

/// A set of harmonically related clocks.
///
/// The *overall period* is the least common multiple of the member
/// periods — the paper's assumption that "there is an overall period
/// which is an integer multiple of the period of each clock signal" is
/// thereby satisfied by construction for integer-picosecond periods.
#[derive(Clone, Debug, Default)]
pub struct ClockSet {
    clocks: Vec<Clock>,
    by_name: HashMap<String, ClockId>,
}

/// A generous sanity bound: one overall period must fit in a millisecond.
/// (Real multi-frequency schemes are within a few octaves of each other;
/// a runaway LCM indicates mis-specified periods.)
const MAX_OVERALL: Time = Time::from_us(1_000);

impl ClockSet {
    /// Creates an empty set.
    pub fn new() -> ClockSet {
        ClockSet::default()
    }

    /// Adds a clock with the given period and rise/fall offsets (both in
    /// `[0, period)`).
    ///
    /// # Errors
    ///
    /// Rejects non-positive periods, out-of-range or coincident edges,
    /// duplicate names, and sets whose least common multiple of periods
    /// exceeds a millisecond (mis-specified harmonics).
    pub fn add_clock(
        &mut self,
        name: impl Into<String>,
        period: Time,
        rise: Time,
        fall: Time,
    ) -> Result<ClockId, ClockError> {
        let name = name.into();
        if period <= Time::ZERO {
            return Err(ClockError::NonPositivePeriod { name });
        }
        if rise < Time::ZERO || rise >= period || fall < Time::ZERO || fall >= period {
            return Err(ClockError::EdgeOutOfRange { name });
        }
        if rise == fall {
            return Err(ClockError::CoincidentEdges { name });
        }
        if self.by_name.contains_key(&name) {
            return Err(ClockError::DuplicateName { name });
        }
        let overall = self
            .clocks
            .iter()
            .map(Clock::period)
            .fold(period, |acc, p| acc.lcm(p));
        if overall > MAX_OVERALL {
            return Err(ClockError::OverallPeriodTooLarge { name });
        }
        let id = ClockId(self.clocks.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.clocks.push(Clock {
            name,
            period,
            rise,
            fall,
        });
        Ok(id)
    }

    /// Returns a clock.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this set.
    pub fn clock(&self, id: ClockId) -> &Clock {
        &self.clocks[id.idx()]
    }

    /// Looks up a clock by name.
    pub fn clock_by_name(&self, name: &str) -> Option<ClockId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over `(id, clock)` pairs.
    pub fn clocks(&self) -> impl Iterator<Item = (ClockId, &Clock)> {
        self.clocks
            .iter()
            .enumerate()
            .map(|(i, c)| (ClockId(i as u32), c))
    }

    /// The number of clocks.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// The overall period: the least common multiple of all periods.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn overall_period(&self) -> Time {
        assert!(!self.clocks.is_empty(), "clock set is empty");
        self.clocks
            .iter()
            .map(Clock::period)
            .reduce(|a, b| a.lcm(b))
            .expect("non-empty")
    }

    /// Enumerates all clock edges within one overall period.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn timeline(&self) -> Timeline {
        Timeline::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut set = ClockSet::new();
        let a = set
            .add_clock("a", Time::from_ns(100), Time::ZERO, Time::from_ns(20))
            .unwrap();
        assert_eq!(set.clock(a).name(), "a");
        assert_eq!(set.clock(a).high_width(), Time::from_ns(20));
        assert_eq!(set.clock(a).low_width(), Time::from_ns(80));
        assert_eq!(set.clock_by_name("a"), Some(a));
        assert_eq!(set.clock_by_name("b"), None);
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
    }

    #[test]
    fn wrapping_pulse_widths() {
        let mut set = ClockSet::new();
        let a = set
            .add_clock(
                "a",
                Time::from_ns(100),
                Time::from_ns(80),
                Time::from_ns(30),
            )
            .unwrap();
        // High from 80 to 130 (=30): width 50.
        assert_eq!(set.clock(a).high_width(), Time::from_ns(50));
        assert_eq!(set.clock(a).low_width(), Time::from_ns(50));
    }

    #[test]
    fn rejects_bad_clocks() {
        let mut set = ClockSet::new();
        assert!(matches!(
            set.add_clock("x", Time::ZERO, Time::ZERO, Time::ZERO),
            Err(ClockError::NonPositivePeriod { .. })
        ));
        assert!(matches!(
            set.add_clock("x", Time::from_ns(10), Time::from_ns(10), Time::ZERO),
            Err(ClockError::EdgeOutOfRange { .. })
        ));
        assert!(matches!(
            set.add_clock("x", Time::from_ns(10), Time::from_ns(3), Time::from_ns(3)),
            Err(ClockError::CoincidentEdges { .. })
        ));
        set.add_clock("x", Time::from_ns(10), Time::ZERO, Time::from_ns(5))
            .unwrap();
        assert!(matches!(
            set.add_clock("x", Time::from_ns(10), Time::ZERO, Time::from_ns(5)),
            Err(ClockError::DuplicateName { .. })
        ));
    }

    #[test]
    fn overall_period_is_lcm() {
        let mut set = ClockSet::new();
        set.add_clock("slow", Time::from_ns(100), Time::ZERO, Time::from_ns(50))
            .unwrap();
        set.add_clock("fast", Time::from_ns(25), Time::ZERO, Time::from_ns(10))
            .unwrap();
        assert_eq!(set.overall_period(), Time::from_ns(100));
        set.add_clock("odd", Time::from_ns(40), Time::ZERO, Time::from_ns(20))
            .unwrap();
        assert_eq!(set.overall_period(), Time::from_ns(200));
    }

    #[test]
    fn runaway_lcm_rejected() {
        let mut set = ClockSet::new();
        set.add_clock("a", Time::from_ps(999_983), Time::ZERO, Time::from_ps(10))
            .unwrap();
        // Coprime near-megahertz periods blow past the millisecond cap.
        assert!(matches!(
            set.add_clock("b", Time::from_ps(999_979), Time::ZERO, Time::from_ps(10)),
            Err(ClockError::OverallPeriodTooLarge { .. })
        ));
    }

    #[test]
    fn error_messages() {
        let e = ClockError::CoincidentEdges { name: "phi".into() };
        assert!(e.to_string().contains("phi"));
    }
}
