//! Agreement between the fast block method and the exhaustive
//! path-enumeration baseline, on generated designs.

use hb_cells::{sc89, Binding};
use hb_sta::analysis::{propagate_ready_max, table};
use hb_sta::paths::enumerate_max_arrival;
use hb_sta::TimingGraph;
use hb_units::{RiseFall, Time};
use hb_workloads::{random_pipeline, PipelineParams};

#[test]
fn block_method_equals_path_enumeration() {
    let lib = sc89();
    for seed in [1u64, 2, 3] {
        let w = random_pipeline(
            &lib,
            PipelineParams {
                stages: 2,
                width: 6,
                gates_per_stage: 60,
                transparent: false,
                period_ns: 100,
                seed,
                imbalance_pct: 0,
            },
        );
        let binding = Binding::new(&w.design, &lib);
        let graph = TimingGraph::build(&w.design, w.module, &binding, &lib)
            .expect("generated pipelines are acyclic");
        let seeds: Vec<_> = graph
            .syncs()
            .iter()
            .filter_map(|s| s.output_net)
            .map(|n| (n, RiseFall::ZERO))
            .collect();

        let mut block = table(&graph, Time::NEG_INF);
        for &(net, at) in &seeds {
            block[net.as_raw() as usize] = at;
        }
        propagate_ready_max(&graph, &mut block);

        let (enumerated, stats) = enumerate_max_arrival(&graph, &seeds, 50_000_000);
        assert!(!stats.truncated, "seed {seed}: raise the limit");
        assert!(
            stats.paths > 100,
            "seed {seed}: the ablation needs real path counts"
        );
        assert_eq!(enumerated, block, "seed {seed}");
    }
}

#[test]
fn enumeration_path_counts_grow_much_faster_than_graph_size() {
    let lib = sc89();
    let mut counts = Vec::new();
    for gates in [30usize, 60, 90] {
        let w = random_pipeline(
            &lib,
            PipelineParams {
                stages: 1,
                width: 6,
                gates_per_stage: gates,
                transparent: false,
                period_ns: 100,
                seed: 5,
                imbalance_pct: 0,
            },
        );
        let binding = Binding::new(&w.design, &lib);
        let graph = TimingGraph::build(&w.design, w.module, &binding, &lib).expect("acyclic");
        let seeds: Vec<_> = graph
            .syncs()
            .iter()
            .filter_map(|s| s.output_net)
            .map(|n| (n, RiseFall::ZERO))
            .collect();
        let (_, stats) = enumerate_max_arrival(&graph, &seeds, u64::MAX / 2);
        counts.push((gates, stats.paths));
    }
    // Path counts must grow super-linearly in gate count (the paper's
    // reason for rejecting enumeration).
    let (g0, p0) = counts[0];
    let (g2, p2) = counts[2];
    assert!(
        p2 / p0 > ((g2 / g0) as u64) * 4,
        "expected super-linear growth: {counts:?}"
    );
}
