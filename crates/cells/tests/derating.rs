//! The interactive-mode delay-adjustment knob.

use hb_cells::{sc89, DelayModel};
use hb_units::{RiseFall, Time, Transition};

#[test]
fn model_derating_scales_and_rounds_up_conservatively() {
    let m = DelayModel::new(
        RiseFall::new(Time::from_ps(101), Time::from_ps(99)),
        RiseFall::new(7, 3),
    );
    let d = m.derated(150);
    assert_eq!(d.intrinsic()[Transition::Rise], Time::from_ps(151));
    assert_eq!(d.intrinsic()[Transition::Fall], Time::from_ps(148));
    assert_eq!(d.slope_ps_per_ff()[Transition::Rise], 10);
    // 100% is the identity on ps-integral values.
    assert_eq!(m.derated(100).eval(10), m.eval(10));
    // Speed-ups work too.
    assert!(m.derated(50).eval(10).max.worst() < m.eval(10).max.worst());
}

#[test]
#[should_panic(expected = "zero derate")]
fn zero_derate_rejected() {
    let _ = DelayModel::zero().derated(0);
}

#[test]
fn library_derating_scales_arcs_and_sync_delays() {
    let lib = sc89();
    let slow = lib.derated(200);
    assert_eq!(slow.name(), "sc89@200pct");
    assert_eq!(slow.cells().count(), lib.cells().count());

    let nand = lib.cell(lib.cell_by_name("NAND2_X1").unwrap());
    let slow_nand = slow.cell(slow.cell_by_name("NAND2_X1").unwrap());
    let base = nand.arcs()[0].delay.eval(10).max.worst();
    let derated = slow_nand.arcs()[0].delay.eval(10).max.worst();
    assert_eq!(derated, Time::from_ps(base.as_ps() * 2));

    let dff = lib
        .cell(lib.cell_by_name("DFF").unwrap())
        .sync_spec()
        .unwrap();
    let slow_dff = slow
        .cell(slow.cell_by_name("DFF").unwrap())
        .sync_spec()
        .unwrap();
    assert_eq!(slow_dff.d_cx, Time::from_ps(dff.d_cx.as_ps() * 2));
    // Constraints (setup/hold) are untouched.
    assert_eq!(slow_dff.setup, dff.setup);
    assert_eq!(slow_dff.hold, dff.hold);
}

#[test]
fn derated_analysis_flips_a_marginal_design() {
    use hb_clock::ClockSet;
    use hb_netlist::{Design, PinDir};
    use hummingbird::{Analyzer, EdgeSpec, Spec};

    let lib = sc89();
    let build = |lib: &hb_cells::Library| -> (Design, hb_netlist::ModuleId) {
        let mut d = Design::new("m");
        lib.declare_into(&mut d).unwrap();
        let m = d.add_module("top").unwrap();
        let ck = d.add_net(m, "ck").unwrap();
        let input = d.add_net(m, "in").unwrap();
        d.add_port(m, "ck", PinDir::Input, ck).unwrap();
        d.add_port(m, "in", PinDir::Input, input).unwrap();
        let inv = d.leaf_by_name("INV_X1").unwrap();
        let dff = d.leaf_by_name("DFF").unwrap();
        let mut prev = input;
        for i in 0..10 {
            let next = d.add_net(m, format!("n{i}")).unwrap();
            let u = d.add_leaf_instance(m, format!("u{i}"), inv).unwrap();
            d.connect(m, u, "A", prev).unwrap();
            d.connect(m, u, "Y", next).unwrap();
            prev = next;
        }
        let q = d.add_net(m, "q").unwrap();
        let ff = d.add_leaf_instance(m, "ff", dff).unwrap();
        d.connect(m, ff, "D", prev).unwrap();
        d.connect(m, ff, "CK", ck).unwrap();
        d.connect(m, ff, "Q", q).unwrap();
        d.set_top(m).unwrap();
        (d, m)
    };

    let mut clocks = ClockSet::new();
    clocks
        .add_clock("ck", Time::from_ns(3), Time::ZERO, Time::from_ps(1_500))
        .unwrap();
    let spec = || {
        Spec::new().clock_port("ck", "ck").input_arrival(
            "in",
            EdgeSpec::new("ck", Transition::Rise),
            Time::ZERO,
        )
    };

    let (d, m) = build(&lib);
    let nominal = Analyzer::new(&d, m, &lib, &clocks, spec())
        .unwrap()
        .analyze();
    assert!(nominal.ok(), "nominal corner meets 3 ns: {nominal}");

    let slow_lib = lib.derated(300);
    let (d, m) = build(&slow_lib);
    let slow = Analyzer::new(&d, m, &slow_lib, &clocks, spec())
        .unwrap()
        .analyze();
    assert!(!slow.ok(), "3× derate must miss 3 ns: {slow}");
    assert!(slow.worst_slack() < nominal.worst_slack());
}
