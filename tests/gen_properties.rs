//! Property harness for the parameterized design generator.
//!
//! Every seeded point of the matrix must produce a design that is
//! well-formed (validates, has no combinational cycles, every sync
//! element clocked) and *exactly* the requested size; the same
//! parameters must reproduce the `.hum` text byte for byte, and
//! different seeds must diverge.
//!
//! The default matrix covers 12 points at sizes that run in seconds;
//! set `HB_GEN_FULL=1` to extend it with larger designs.

use hb_cells::sc89;
use hb_io::parse_hum;
use hb_units::Time;
use hb_workloads::{generate, GenKind, GenParams};
use hummingbird::Analyzer;

const KINDS: [GenKind; 3] = [GenKind::Pipeline, GenKind::Sbox, GenKind::Sram];

fn matrix() -> Vec<GenParams> {
    let mut sizes = vec![2_000usize, 6_000];
    if std::env::var_os("HB_GEN_FULL").is_some() {
        sizes.extend([20_000, 50_000]);
    }
    let mut points = Vec::new();
    for kind in KINDS {
        for &cells in &sizes {
            for seed in [7u64, 8] {
                let mut p = GenParams::new(kind, cells, seed);
                // Exercise the full clock-count range, not just the
                // default of 4.
                p.clocks = 2 + (cells / 2_000 + seed as usize) % 7;
                points.push(p);
            }
        }
    }
    points
}

/// Every matrix point yields a validating, conforming, analyzable
/// design of exactly the requested cell count, with harmonically
/// related clocks.
#[test]
fn generated_designs_are_well_formed_across_the_matrix() {
    let lib = sc89();
    let points = matrix();
    assert!(points.len() >= 12, "matrix must cover at least 12 points");
    for p in &points {
        let w = generate(&lib, p);
        let tag = format!("{} cells={} seed={}", p.kind.name(), p.cells, p.seed);
        w.design.validate().unwrap_or_else(|e| panic!("{tag}: {e}"));
        let stats = w.design.stats(w.module);
        assert_eq!(stats.cells, p.cells, "{tag}: exact cell count");

        // Harmonic clock plan: the overall period is an exact multiple
        // of every clock's period.
        let overall = w.clocks.overall_period();
        assert_eq!(w.clocks.len(), p.clocks.clamp(2, 8), "{tag}: clock count");
        for (_, clock) in w.clocks.clocks() {
            assert_eq!(
                overall.rem_euclid(clock.period()),
                Time::ZERO,
                "{tag}: {} is harmonic",
                clock.name()
            );
        }

        // Conformance is the strong well-formedness check: preparing the
        // analysis proves the combinational graph acyclic and every
        // sync element monotonically reachable from exactly one clock.
        let analyzer = Analyzer::new(&w.design, w.module, &lib, &w.clocks, w.spec.clone())
            .unwrap_or_else(|e| panic!("{tag}: conforms: {e}"));
        let report = analyzer.analyze();
        assert!(
            !report.terminal_slacks().is_empty(),
            "{tag}: analysis constrains at least one terminal"
        );
    }
}

/// The (kind, cells, seed, clocks) tuple fully determines the emitted
/// `.hum` text; changing only the seed changes it.
#[test]
fn same_seed_reproduces_hum_bytes_and_seeds_diverge() {
    let lib = sc89();
    for kind in KINDS {
        let p = GenParams::new(kind, 2_000, 7);
        let a = generate(&lib, &p).to_hum();
        let b = generate(&lib, &p).to_hum();
        assert_eq!(a, b, "{}: same seed is byte-identical", kind.name());
        let other = generate(&lib, &GenParams::new(kind, 2_000, 8)).to_hum();
        assert_ne!(a, other, "{}: different seeds diverge", kind.name());
    }
}

/// Regression for id-width assumptions: a design with more than 65536
/// nets survives emit → parse → analyze → re-emit with nothing
/// truncated. (Ids are u32 arena indices; nothing in the pipeline may
/// narrow them to u16.)
#[test]
fn designs_beyond_the_u16_boundary_round_trip_untruncated() {
    let lib = sc89();
    let p = GenParams::new(GenKind::Sram, 70_000, 3);
    let w = generate(&lib, &p);
    let stats = w.design.stats(w.module);
    assert!(stats.nets > 65_536, "design must cross the u16 boundary");
    let text = w.to_hum();
    let file = parse_hum(&text, &lib).expect("70k-cell .hum re-parses");
    let top = file.design.top().expect("top preserved");
    let rt = file.design.stats(top);
    assert_eq!(rt.cells, stats.cells, "cells survive the round trip");
    assert_eq!(rt.nets, stats.nets, "nets survive the round trip");
    let analyzer = Analyzer::new(&file.design, top, &lib, &file.clocks, w.spec.clone())
        .expect("round-tripped design conforms");
    let report = analyzer.analyze();
    assert!(
        report.terminal_slacks().len() > 8,
        "analysis sees the full design, not a truncated one"
    );
    let text2 = generate(&lib, &p).to_hum();
    assert_eq!(text, text2, "emission is deterministic at 70k cells");
}
