//! Property-style tests of the timeline and pass-minimisation
//! machinery, driven by a seeded deterministic generator.

use hb_clock::{ClockSet, EdgeGraph, Requirement};
use hb_rng::SmallRng;
use hb_units::{Sense, Time};

const CASES: u64 = 64;

/// A random harmonically related clock set: a base period with 1–3
/// clocks at divisors of it, each with a random non-degenerate pulse.
fn random_clock_set(rng: &mut SmallRng) -> ClockSet {
    let base = rng.gen_range(2..6) as i64;
    let count = rng.gen_range(1..4);
    let mut set = ClockSet::new();
    let base_ps = base * 12_000;
    for i in 0..count {
        // True harmonic divisors keep the overall period equal to the
        // base (12 is divisible by 1..=4), so edge counts stay small.
        let div = rng.gen_range(1..5) as i64;
        let rise_pct = rng.gen_range(0..100) as i64;
        let width_pct = rng.gen_range(1..99) as i64;
        let period = base_ps / div;
        let rise = period * (rise_pct % 100) / 100;
        let width = (period * width_pct / 100).max(1);
        let fall = (rise + width) % period;
        let fall = if fall == rise {
            (rise + 1) % period
        } else {
            fall
        };
        // Degenerate corners can still collide; skip those clocks.
        let _ = set.add_clock(
            format!("c{i}"),
            Time::from_ps(period),
            Time::from_ps(rise),
            Time::from_ps(fall),
        );
    }
    if set.is_empty() {
        set.add_clock("fallback", Time::from_ns(10), Time::ZERO, Time::from_ns(5))
            .expect("valid");
    }
    set
}

/// Edge times are sorted, within the overall period, and pulses pair
/// lead/trail edges `width` apart.
#[test]
fn timeline_is_well_formed() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x3001 + case);
        let set = random_clock_set(&mut rng);
        let tl = set.timeline();
        let overall = tl.overall_period();
        let mut last = Time::from_ps(-1);
        for (_, e) in tl.edges() {
            assert!(Time::ZERO <= e.time && e.time < overall);
            assert!(e.time >= last);
            last = e.time;
        }
        for (id, clock) in set.clocks() {
            let n = (overall / clock.period()) as usize;
            for sense in [Sense::Positive, Sense::Negative] {
                let pulses = tl.pulses(id, sense);
                assert_eq!(pulses.len(), n);
                for p in pulses {
                    let lead = tl.edge_time(p.lead);
                    let trail = tl.edge_time(p.trail);
                    assert_eq!((trail - lead).rem_euclid_end(clock.period()), p.width);
                }
            }
        }
    }
}

fn random_requirements(
    rng: &mut SmallRng,
    tl: &hb_clock::Timeline,
    max: usize,
) -> Vec<Requirement> {
    let ids: Vec<_> = tl.edges().map(|(id, _)| id).collect();
    let count = rng.gen_range(0..max);
    (0..count)
        .map(|_| Requirement {
            assert_edge: ids[rng.gen_range(0..64) % ids.len()],
            close_edge: ids[rng.gen_range(0..64) % ids.len()],
        })
        .collect()
}

/// `minimal_passes` covers every requirement, and the closure-latest
/// pass of each requirement's close edge satisfies it.
#[test]
fn pass_plans_cover_all_requirements() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x3002 + case);
        let set = random_clock_set(&mut rng);
        let tl = set.timeline();
        let reqs = random_requirements(&mut rng, &tl, 24);
        let graph = EdgeGraph::new(&tl);
        let plan = graph.minimal_passes(&reqs);
        assert!(plan.pass_count() >= 1);
        for r in &reqs {
            let a = tl.edge_time(r.assert_edge);
            let c = tl.edge_time(r.close_edge);
            let covered = (0..plan.pass_count()).any(|p| plan.satisfies(p, a, c));
            assert!(covered, "requirement {r:?} not covered");
            let chosen = plan.pass_for_closure(c);
            assert!(
                plan.satisfies(chosen, a, c),
                "closure-latest pass misses {r:?}"
            );
        }
    }
}

/// The minimal plan never uses more passes than one per distinct
/// closure edge (the trivial upper bound: break just after each).
#[test]
fn pass_count_is_bounded_by_distinct_closures() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x3003 + case);
        let set = random_clock_set(&mut rng);
        let tl = set.timeline();
        let mut reqs = random_requirements(&mut rng, &tl, 24);
        if reqs.is_empty() {
            let ids: Vec<_> = tl.edges().map(|(id, _)| id).collect();
            reqs.push(Requirement {
                assert_edge: ids[0],
                close_edge: ids[ids.len() - 1],
            });
        }
        let distinct_closures = {
            let mut times: Vec<Time> = reqs.iter().map(|r| tl.edge_time(r.close_edge)).collect();
            times.sort();
            times.dedup();
            times.len()
        };
        let graph = EdgeGraph::new(&tl);
        let plan = graph.minimal_passes(&reqs);
        assert!(plan.pass_count() <= distinct_closures.max(1));
    }
}

/// Ideal path constraints are in `(0, overall]` and respect the
/// next-occurrence semantics.
#[test]
fn ideal_constraints_are_in_range() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x3004 + case);
        let set = random_clock_set(&mut rng);
        let tl = set.timeline();
        let overall = tl.overall_period();
        let ids: Vec<_> = tl.edges().map(|(id, _)| id).collect();
        for &a in &ids {
            for &c in &ids {
                let d = tl.ideal_constraint(a, c);
                assert!(Time::ZERO < d && d <= overall);
                if tl.edge_time(a) == tl.edge_time(c) {
                    assert_eq!(d, overall);
                }
            }
        }
    }
}
