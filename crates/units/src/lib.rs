//! Foundational value types for the hummingbird timing analyzer.
//!
//! All timing arithmetic in the workspace is carried out in **integer
//! picoseconds** through the [`Time`] newtype. The DAC'89 Hummingbird
//! formulation relies on exact modular arithmetic over harmonically
//! related clock periods (least common multiples, edge placement within a
//! "broken open" clock period), and on fixpoint iterations of slack
//! transfer; integer time makes both exact and platform independent.
//!
//! The crate also provides the small algebraic helpers used throughout the
//! analyzer:
//!
//! * [`Transition`] and [`RiseFall`] — separate rising/falling settling
//!   times, following Bening et al. (DAC'82), which the paper adopts;
//! * [`MinMax`] — early/late value pairs for the supplementary (minimum
//!   delay) path constraints;
//! * [`Sense`] — timing-arc unateness, used when propagating rise/fall
//!   values through inverting and non-inverting logic.
//!
//! # Examples
//!
//! ```
//! use hb_units::{Time, RiseFall, Transition};
//!
//! let clock_period = Time::from_ns(100);
//! let pulse_width = Time::from_ns(20);
//! assert_eq!(clock_period - pulse_width, Time::from_ns(80));
//!
//! let settle = RiseFall::new(Time::from_ps(350), Time::from_ps(410));
//! assert_eq!(settle[Transition::Fall], Time::from_ps(410));
//! assert_eq!(settle.worst(), Time::from_ps(410));
//! ```

mod minmax;
mod risefall;
mod sense;
mod time;

pub use minmax::MinMax;
pub use risefall::{RiseFall, Transition};
pub use sense::Sense;
pub use time::{ParseTimeError, Time};
